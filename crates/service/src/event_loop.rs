//! The single-threaded readiness event loop behind `rmsa serve`.
//!
//! One thread owns the listening socket and every connection. Each
//! iteration: wait on the [`Poller`], pick up [`Completion`]s workers
//! pushed through the wake pipe, read whatever sockets are readable,
//! parse newline-delimited requests, and flush whatever responses are
//! ready to leave — all non-blocking, so no client can stall the loop
//! and no solver ever touches a socket.
//!
//! **Pipelining ordering invariant.** Every parsed request line gets the
//! next per-connection sequence number; responses park in an ordered
//! buffer keyed by that sequence and are appended to the write buffer
//! strictly in sequence order. Clients may therefore keep hundreds of
//! requests in flight on one connection and still match responses to
//! requests positionally — the echoed `id` is a convenience, not a
//! requirement. Cheap control requests (`ping`, `stats`, `shutdown`) are
//! answered inline by the loop but travel through the same ordered
//! buffer, so they never overtake an earlier solve on the same
//! connection.
//!
//! **Backpressure.** A connection pauses reading (its registration is
//! muted, bytes accumulate in the kernel) while it has `max_inflight`
//! requests in flight or more than [`WRITE_PAUSE_BYTES`] of unflushed
//! responses — a slow reader throttles only itself. Solver threads hand
//! finished responses back as pre-rendered lines via the poller's wake
//! pipe; they never block on, or even see, a socket.
//!
//! **Shutdown drain.** After a `shutdown` request (or
//! [`crate::ServiceHandle::shutdown`]) the loop stops accepting, refuses
//! new requests with `shutting-down` errors, serves everything already
//! admitted, flushes every connection, and exits — or gives up after a
//! grace period if a dead client never drains its responses.

use crate::lock_unpoisoned;
use crate::net::{Event, Interest, Poller, WAKE_TOKEN};
use crate::server::{enqueue, shutting_down_error, Job, JobKind, Reply, Shared};
use crate::session::SessionKey;
use crate::wire::{ErrorCode, Request, Response, WireError, WIRE_MIN_SCHEMA_VERSION};
use rmsa_obs::{flight, names, trace, LazyCounter, LazyGauge, Span};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Requests admitted into the queue (solve + warm).
static REQUESTS: LazyCounter = LazyCounter::new(names::REQUESTS_TOTAL);
/// Responses delivered back to their connections.
static RESPONSES: LazyCounter = LazyCounter::new(names::RESPONSES_TOTAL);
/// Queued requests not yet delivered, across all connections.
static INFLIGHT: LazyGauge = LazyGauge::new(names::INFLIGHT);
/// Unflushed response bytes across all connection write buffers.
static WBUF_BYTES: LazyGauge = LazyGauge::new(names::WRITE_BUFFER_BYTES);
/// Budget burn rate over the trailing 1 s / 10 s / 60 s windows, in
/// milli-units (1000 ⇒ consuming the error budget exactly as fast as
/// the objective sustains).
static SLO_BURN_1S: LazyGauge = LazyGauge::new(names::SLO_BURN_1S);
static SLO_BURN_10S: LazyGauge = LazyGauge::new(names::SLO_BURN_10S);
static SLO_BURN_60S: LazyGauge = LazyGauge::new(names::SLO_BURN_60S);
/// Flight-recorder dumps written to the `--flight-dump` file.
static FLIGHT_DUMPS: LazyCounter = LazyCounter::new(names::FLIGHT_DUMPS_TOTAL);

/// Token of the listening socket; connection tokens are `slot index + 1`.
const LISTENER_TOKEN: u64 = 0;

/// Hard cap on one request line; beyond it the connection is answered
/// with a `bad-request` error and drained no further.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Unflushed-response bytes beyond which a connection stops reading.
const WRITE_PAUSE_BYTES: usize = 256 << 10;

/// Poller timeout while serving; bounds how stale the shutdown-flag
/// check can get even if no event ever arrives.
const IDLE_WAIT_MS: i32 = 500;

/// Poller timeout while draining for shutdown.
const DRAIN_WAIT_MS: i32 = 20;

/// Error budget of the latency objective: 99 % of solves within
/// `--slo-ms`, so over-threshold fraction 0.01 sustains burn 1000.
const SLO_BUDGET: f64 = 0.01;

/// Seconds of per-second delta history behind the burn windows.
const SLO_SLOTS: usize = 60;

/// Minimum spacing between anomaly flight dumps (shutdown bypasses it).
const FLIGHT_DUMP_SPACING: Duration = Duration::from_secs(1);

/// How long the drain waits for clients to read their last responses
/// before the daemon exits anyway.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

struct Conn {
    stream: TcpStream,
    /// Guards stale completions: a worker's [`Reply`] only routes back
    /// here if the slot was not reused by a newer connection meanwhile.
    generation: u64,
    interest: Interest,
    /// Unparsed request bytes (no complete line yet, or reading paused).
    rbuf: Vec<u8>,
    /// Rendered response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Sequence number the next parsed request line will get.
    next_seq: u64,
    /// Sequence number the next flushed response must have.
    flush_seq: u64,
    /// Finished responses waiting for their turn in sequence order.
    done: BTreeMap<u64, String>,
    /// Requests handed to the admission queue and not yet completed.
    inflight: usize,
    eof: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            interest: Interest::READ,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            flush_seq: 0,
            done: BTreeMap::new(),
            inflight: 0,
            eof: false,
            dead: false,
        }
    }

    /// Response bytes queued but not yet written to the socket.
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Park a finished response line at its sequence slot.
    fn finish(&mut self, seq: u64, line: String) {
        self.done.insert(seq, line);
    }

    /// Nothing left to read, serve, or flush.
    fn drained(&self) -> bool {
        self.inflight == 0 && self.done.is_empty() && self.pending_write() == 0
    }
}

/// Rolling SLO accounting plus anomaly flight-dump throttling, owned by
/// the event loop. Once a second it snapshots the solve-latency
/// histogram, banks the per-second (total, over-threshold) deltas in a
/// 60-slot ring, and refreshes the `slo_burn_{1s,10s,60s}_milli`
/// gauges. The threshold is bucket-granular ([`rmsa_obs::LogHistogram`]
/// `count_over`), which is exactly the resolution the histogram has.
struct SloState {
    total: [u64; SLO_SLOTS],
    over: [u64; SLO_SLOTS],
    pos: usize,
    seen_total: u64,
    seen_over: u64,
    last_tick: Instant,
    last_dump: Option<Instant>,
}

impl SloState {
    fn new() -> SloState {
        SloState {
            total: [0; SLO_SLOTS],
            over: [0; SLO_SLOTS],
            pos: 0,
            seen_total: 0,
            seen_over: 0,
            last_tick: Instant::now(),
            last_dump: None,
        }
    }

    /// Bank one per-second delta and refresh the burn gauges; a no-op
    /// until a second has passed since the last tick (the poller wakes
    /// the loop at least every [`IDLE_WAIT_MS`]).
    fn tick(&mut self, shared: &Shared) {
        if !rmsa_obs::enabled() || self.last_tick.elapsed() < Duration::from_secs(1) {
            return;
        }
        self.last_tick = Instant::now();
        let snap = rmsa_obs::metrics::histogram(names::RPC_SOLVE_SECS).snapshot();
        let total = snap.count();
        let over = snap.count_over(shared.slo_secs);
        self.pos = (self.pos + 1) % SLO_SLOTS;
        self.total[self.pos] = total.saturating_sub(self.seen_total);
        self.over[self.pos] = over.saturating_sub(self.seen_over);
        self.seen_total = total;
        self.seen_over = over;
        SLO_BURN_1S.set(self.burn_milli(1));
        SLO_BURN_10S.set(self.burn_milli(10));
        SLO_BURN_60S.set(self.burn_milli(60));
    }

    /// Burn rate over the trailing `window` slots, milli-units.
    fn burn_milli(&self, window: usize) -> i64 {
        let mut total = 0u64;
        let mut over = 0u64;
        for k in 0..window.min(SLO_SLOTS) {
            let i = (self.pos + SLO_SLOTS - k) % SLO_SLOTS;
            total += self.total[i];
            over += self.over[i];
        }
        if total == 0 {
            0
        } else {
            ((over as f64 / total as f64) / SLO_BUDGET * 1000.0).round() as i64
        }
    }

    /// Write the flight recorder to the `--flight-dump` file, at most
    /// once per [`FLIGHT_DUMP_SPACING`] unless forced (shutdown).
    fn dump(&mut self, shared: &Shared, reason: &str, trace: u64, detail: u64, force: bool) {
        let Some(path) = shared.flight_dump.as_deref() else {
            return;
        };
        if !force
            && self
                .last_dump
                .is_some_and(|at| at.elapsed() < FLIGHT_DUMP_SPACING)
        {
            return;
        }
        self.last_dump = Some(Instant::now());
        write_flight_dump(path, reason, trace, detail);
    }
}

/// Dump the flight recorder to `path` (tmp file + rename, so readers
/// never see a torn document).
fn write_flight_dump(path: &Path, reason: &str, trace: u64, detail: u64) {
    let doc = crate::obs_report::flight_dump_json(reason, trace, detail);
    let tmp = path.with_extension("tmp");
    let written =
        std::fs::write(&tmp, doc.render_pretty() + "\n").and_then(|()| std::fs::rename(&tmp, path));
    match written {
        Ok(()) => FLIGHT_DUMPS.inc(),
        Err(e) => eprintln!("rmsa serve: flight dump to {} failed: {e}", path.display()),
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    // The scan backend (the only one off unix) never dereferences fds;
    // it only needs distinct registration slots, which tokens provide.
    -1
}

/// Run the loop until shutdown completes. Takes ownership of the
/// listener and poller; `shared` connects it to the worker pool.
pub(crate) fn run(listener: TcpListener, mut poller: Poller, shared: &Shared) {
    let listener_fd = fd_of(&listener);
    poller.register(listener_fd, LISTENER_TOKEN, Interest::READ);
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut generations: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut accepting = true;
    let mut drain_deadline: Option<Instant> = None;
    let mut slo = SloState::new();

    loop {
        events.clear();
        let timeout = if drain_deadline.is_some() {
            DRAIN_WAIT_MS
        } else {
            IDLE_WAIT_MS
        };
        poller.wait(&mut events, timeout);

        // Route worker completions first so this iteration's write pass
        // can flush them (and so freed pipeline slots resume reading).
        deliver_completions(shared, &mut slots, &mut slo);
        slo.tick(shared);

        for event in &events {
            match event.token {
                WAKE_TOKEN => {} // already handled above
                LISTENER_TOKEN => {
                    if accepting {
                        accept_ready(
                            &listener,
                            &mut poller,
                            &mut slots,
                            &mut free,
                            &mut generations,
                        );
                    }
                }
                token => {
                    let index = (token - 1) as usize;
                    if let Some(conn) = slots.get_mut(index).and_then(Option::as_mut) {
                        if event.readable && !conn.dead {
                            read_ready(shared, conn, token);
                        }
                    }
                }
            }
        }

        // Per-connection progress pass: resume paused parsers, move
        // in-order responses to the write buffer, push bytes, retire
        // finished or broken connections, refresh registrations.
        for (index, slot) in slots.iter_mut().enumerate() {
            let token = index as u64 + 1;
            let mut close = false;
            if let Some(conn) = slot.as_mut() {
                if !conn.dead {
                    process_lines(shared, conn, token);
                }
                advance_writes(conn);
                close = conn.dead || (conn.eof && conn.drained());
                if !close {
                    update_interest(&mut poller, conn, token, shared);
                }
            }
            if close {
                if let Some(conn) = slot.take() {
                    // Keep the aggregate gauges honest for work this
                    // connection takes to the grave.
                    INFLIGHT.add(-(conn.inflight as i64));
                    WBUF_BYTES.add(-(conn.pending_write() as i64));
                    poller.deregister(fd_of(&conn.stream));
                    flight::record(names::CONN_CLOSE, token, 0);
                    free.push(index);
                }
            }
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            if accepting {
                accepting = false;
                poller.deregister(listener_fd);
                drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                flight::record(names::ANOMALY_SHUTDOWN, 0, 0);
                slo.dump(shared, "shutdown", 0, 0, true);
            }
            let queue_empty = lock_unpoisoned(&shared.queue).is_empty();
            let completions_empty = lock_unpoisoned(&shared.completions).is_empty();
            let flushed = slots.iter().flatten().all(Conn::drained);
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (queue_empty && completions_empty && flushed) || expired {
                break;
            }
        }
    }
}

/// Accept until `WouldBlock`, registering each connection read-only.
fn accept_ready(
    listener: &TcpListener,
    poller: &mut Poller,
    slots: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    generations: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Responses are whole lines; coalescing them behind Nagle
                // only adds tail latency.
                let _ = stream.set_nodelay(true);
                *generations += 1;
                let conn = Conn::new(stream, *generations);
                let index = match free.pop() {
                    Some(index) => index,
                    None => {
                        slots.push(None);
                        slots.len() - 1
                    }
                };
                poller.register(fd_of(&conn.stream), index as u64 + 1, conn.interest);
                flight::record(names::CONN_OPEN, index as u64 + 1, 0);
                slots[index] = Some(conn);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept errors (aborted handshakes, fd pressure):
            // give up for this readiness event, the next one retries.
            Err(_) => break,
        }
    }
}

/// Hand every pending worker completion to its connection, unless the
/// connection died (or its slot was reused) while the job was in flight.
///
/// This is also where a request's life ends for observability: the
/// `flush` span closes, the trace finishes (joining its terminal status
/// and feeding the tail sampler), and anomalies — an error response or
/// an end-to-end latency past `--slo-ms` — fire flight-recorder events
/// and (rate-limited) flight dumps.
fn deliver_completions(shared: &Shared, slots: &mut [Option<Conn>], slo: &mut SloState) {
    let completions = std::mem::take(&mut *lock_unpoisoned(&shared.completions));
    for completion in completions {
        let index = (completion.reply.token.max(1) - 1) as usize;
        if let Some(conn) = slots.get_mut(index).and_then(Option::as_mut) {
            if conn.generation == completion.reply.generation {
                conn.inflight = conn.inflight.saturating_sub(1);
                INFLIGHT.add(-1);
                RESPONSES.inc();
                // The flush phase: from the worker finishing the render
                // to the event loop handing the line to the ordered
                // write path. Its duration becomes the `flush_secs`
                // estimate sealed into the *next* responses' lines.
                let flush_wait = completion.rendered_at.elapsed();
                trace::record_closed(
                    completion.reply.trace,
                    0,
                    names::FLUSH,
                    completion.rendered_at,
                    flush_wait,
                );
                shared
                    .last_flush_bits
                    .store(flush_wait.as_secs_f64().to_bits(), Ordering::Relaxed);
                let total_secs = completion.enqueued.elapsed().as_secs_f64();
                let trace_id = completion.reply.trace;
                trace::finish_trace(trace_id, total_secs, completion.error_code);
                if completion.error_code != 0 {
                    flight::record(names::ANOMALY_ERROR, trace_id, completion.error_code as u64);
                    slo.dump(
                        shared,
                        "error",
                        trace_id,
                        completion.error_code as u64,
                        false,
                    );
                } else if total_secs > shared.slo_secs {
                    let total_us = (total_secs * 1e6) as u64;
                    flight::record(names::ANOMALY_SLOW, trace_id, total_us);
                    slo.dump(shared, "slow", trace_id, total_us, false);
                }
                conn.finish(completion.reply.seq, completion.line);
            }
        }
    }
}

/// Drain the socket's read half until `WouldBlock`, EOF, or backpressure.
fn read_ready(shared: &Shared, conn: &mut Conn, token: u64) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.inflight >= shared.max_inflight || conn.pending_write() >= WRITE_PAUSE_BYTES {
            break;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                process_lines(shared, conn, token);
                if conn.dead || conn.eof {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Parse complete request lines out of the read buffer, stopping at the
/// pipelining window so a burst larger than `max_inflight` stays
/// buffered until responses drain (the progress pass resumes it).
fn process_lines(shared: &Shared, conn: &mut Conn, token: u64) {
    let mut parsed = 0;
    while !conn.dead && conn.inflight < shared.max_inflight {
        let Some(rel) = conn.rbuf[parsed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let end = parsed + rel;
        let line = String::from_utf8_lossy(&conn.rbuf[parsed..end]).into_owned();
        parsed = end + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // Blank lines are not requests: skipped without a sequence
            // number, exactly like the blocking server ignored them.
            continue;
        }
        handle_request(shared, conn, token, trimmed);
    }
    conn.rbuf.drain(..parsed);
    if conn.rbuf.len() > MAX_LINE_BYTES && !conn.rbuf.contains(&b'\n') {
        // A line longer than any legal request: answer once, stop
        // reading, flush, close. Anything else would buffer without
        // bound on behalf of a hostile client.
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let error = Response::error(
            0,
            WireError::new(
                ErrorCode::BadRequest,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ),
        );
        conn.finish(seq, error.render_for(WIRE_MIN_SCHEMA_VERSION));
        conn.rbuf.clear();
        conn.eof = true;
    }
}

/// Dispatch one request line under the next sequence number: control
/// requests complete inline, session work goes to the admission queue.
fn handle_request(shared: &Shared, conn: &mut Conn, token: u64, line: &str) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    // The trace is minted here, before parsing, so the parse span itself
    // belongs to the request's phase tree; queued work carries the id in
    // its Reply and echoes it in SolveTiming::trace.
    let trace_id = trace::next_trace_id();
    let parse_span = Span::detached(trace_id, names::PARSE);
    let parsed = Request::parse_versioned(line);
    drop(parse_span);
    let (version, request) = match parsed {
        Ok(parsed) => parsed,
        Err(failure) => {
            let response = Response::error(failure.id, failure.error);
            conn.finish(seq, response.render_for(failure.version));
            return;
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        conn.finish(seq, shutting_down_error(request.id()).render_for(version));
        return;
    }
    match request {
        Request::Ping { id } => {
            conn.finish(seq, Response::Pong { id }.render_for(version));
        }
        Request::Stats { id } => {
            let response = Response::Stats {
                id,
                sessions: shared.registry.stats(),
                evictions: shared.registry.evictions(),
            };
            conn.finish(seq, response.render_for(version));
        }
        Request::Metrics { id } => {
            let response = Response::Metrics {
                id,
                report: crate::obs_report::metrics_report(),
            };
            conn.finish(seq, response.render_for(version));
        }
        Request::Trace {
            id,
            limit,
            slowest,
            trace,
        } => {
            let traces = if trace != 0 {
                crate::obs_report::trace_report_by_id(trace)
            } else {
                crate::obs_report::trace_reports(limit, slowest)
            };
            let response = Response::Trace { id, traces };
            conn.finish(seq, response.render_for(version));
        }
        Request::Flight { id } => {
            let response = Response::Flight {
                id,
                events: crate::obs_report::flight_events(),
            };
            conn.finish(seq, response.render_for(version));
        }
        Request::Shutdown { id } => {
            conn.finish(seq, Response::ShuttingDown { id }.render_for(version));
            shared.begin_shutdown();
        }
        Request::Solve(solve) => {
            let key = SessionKey::from(&solve);
            submit(
                shared,
                conn,
                token,
                seq,
                version,
                trace_id,
                key,
                JobKind::Solve(solve),
            );
        }
        Request::Warm(warm) => {
            let key = SessionKey::from(&warm);
            submit(
                shared,
                conn,
                token,
                seq,
                version,
                trace_id,
                key,
                JobKind::Warm(warm),
            );
        }
    }
}

/// Enqueue session work; a refusal (shutdown raced us) is answered
/// immediately through the ordered path.
#[allow(clippy::too_many_arguments)]
fn submit(
    shared: &Shared,
    conn: &mut Conn,
    token: u64,
    seq: u64,
    version: u32,
    trace_id: u64,
    key: SessionKey,
    kind: JobKind,
) {
    let id = match &kind {
        JobKind::Solve(solve) => solve.id,
        JobKind::Warm(warm) => warm.id,
    };
    let reply = Reply {
        token,
        generation: conn.generation,
        seq,
        version,
        trace: trace_id,
    };
    conn.inflight += 1;
    let admit_span = Span::detached(trace_id, names::ADMIT);
    let job = Job {
        key,
        kind,
        enqueued: Instant::now(),
        reply,
    };
    let refused = enqueue(shared, job);
    drop(admit_span);
    if refused.is_some() {
        conn.inflight = conn.inflight.saturating_sub(1);
        conn.finish(seq, shutting_down_error(id).render_for(version));
    } else {
        REQUESTS.inc();
        INFLIGHT.add(1);
    }
}

/// Append every response whose turn has come to the write buffer, then
/// push bytes until the socket stops accepting them.
fn advance_writes(conn: &mut Conn) {
    let before = conn.pending_write() as i64;
    while let Some(line) = conn.done.remove(&conn.flush_seq) {
        conn.wbuf.extend_from_slice(line.as_bytes());
        conn.wbuf.push(b'\n');
        conn.flush_seq += 1;
    }
    while conn.wpos < conn.wbuf.len() && !conn.dead {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => conn.dead = true,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => conn.dead = true,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (64 << 10) {
        // Reclaim the flushed prefix of a large buffer without shifting
        // bytes on every partial write.
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    WBUF_BYTES.add(conn.pending_write() as i64 - before);
}

/// Re-register the connection for exactly what it can make progress on:
/// reads unless paused (EOF, pipeline full, or too much unflushed
/// output), writes only while flushing is actually blocked.
fn update_interest(poller: &mut Poller, conn: &mut Conn, token: u64, shared: &Shared) {
    let want = Interest {
        readable: !conn.eof
            && conn.inflight < shared.max_inflight
            && conn.pending_write() < WRITE_PAUSE_BYTES,
        writable: conn.pending_write() > 0,
    };
    if want != conn.interest {
        // A read-interest flip on a live stream is the backpressure
        // boundary: the pipeline window or write buffer filled (pause)
        // or drained back under the limits (resume).
        if want.readable != conn.interest.readable && !conn.eof {
            if want.readable {
                flight::record(
                    names::BACKPRESSURE_RESUME,
                    token,
                    conn.pending_write() as u64,
                );
            } else {
                flight::record(
                    names::BACKPRESSURE_PAUSE,
                    token,
                    conn.pending_write() as u64,
                );
            }
        }
        poller.modify(fd_of(&conn.stream), token, want);
        conn.interest = want;
    }
}
