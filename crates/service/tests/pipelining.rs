//! Pipelining tests of the event-loop server: many in-flight requests on
//! one connection, responses in request order, and isolation — one
//! stalled reader must never stall another connection's solves.

use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use rmsa_service::wire::{Algorithm, Request, Response, SolveRequest};
use rmsa_service::{server, ServerConfig, ServiceClient};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_config(workers: usize) -> ServerConfig {
    ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(workers)
        .max_sessions(2)
        .build()
        .expect("valid config")
}

fn solve_request(id: u64, algorithm: Algorithm, alpha: f64) -> SolveRequest {
    SolveRequest {
        id,
        dataset: DatasetKind::LastfmSyn,
        strategy: RrStrategy::Standard,
        algorithm,
        incentive: IncentiveModel::Linear,
        alpha,
        evaluate: true,
    }
}

/// A deterministic little request population spanning several solve
/// classes, so pipelined batching has real work to interleave.
fn request_population(n: u64) -> Vec<SolveRequest> {
    let algorithms = [Algorithm::Rma, Algorithm::OneBatch, Algorithm::TiCarm];
    let alphas = [0.1, 0.2, 0.3];
    (1..=n)
        .map(|id| solve_request(id, algorithms[(id % 3) as usize], alphas[(id % 3) as usize]))
        .collect()
}

/// The tentpole invariant: 64 requests fired back-to-back on ONE
/// connection — no waiting between sends — come back exactly in request
/// order, every id echoed, and the payload bytes are bit-identical to
/// the same requests issued sequentially against a 1-worker daemon.
#[test]
fn a_burst_of_64_pipelined_requests_answers_in_order_and_bit_identically() {
    let requests = request_population(64);

    // Pipelined shot against an 8-worker daemon.
    let handle = server::start("127.0.0.1:0", tiny_config(8)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");
    for request in &requests {
        client.send(&Request::Solve(request.clone())).expect("send");
    }
    let mut pipelined = Vec::new();
    for expected in &requests {
        match client.recv().expect("recv") {
            Response::Solve(solve) => {
                assert_eq!(
                    solve.id, expected.id,
                    "responses must come back in request order"
                );
                pipelined.push(solve.canonical_json().render_compact());
            }
            other => panic!("expected a solve for id {}, got {other:?}", expected.id),
        }
    }
    handle.shutdown();
    handle.wait();

    // The same requests, strictly sequentially, one worker, memoization
    // off — the slowest, most conservative path the server has.
    let sequential_config = ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(1)
        .max_sessions(2)
        .memoize(false)
        .build()
        .expect("valid config");
    let handle = server::start("127.0.0.1:0", sequential_config).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let mut sequential = Vec::new();
    for request in &requests {
        match client.call(&Request::Solve(request.clone())).expect("call") {
            Response::Solve(solve) => sequential.push(solve.canonical_json().render_compact()),
            other => panic!("expected a solve, got {other:?}"),
        }
    }
    handle.shutdown();
    handle.wait();

    assert_eq!(
        pipelined, sequential,
        "pipelined concurrent responses must be bit-identical to sequential ones"
    );
}

/// Inline ops travel the same ordered response path as solves: a ping
/// sent after a solve on the same connection must not overtake it.
#[test]
fn control_ops_do_not_overtake_earlier_solves_on_the_same_connection() {
    let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");
    client
        .send(&Request::Solve(solve_request(1, Algorithm::Rma, 0.1)))
        .expect("send solve");
    client.send(&Request::Ping { id: 2 }).expect("send ping");
    client.send(&Request::Stats { id: 3 }).expect("send stats");
    assert!(
        matches!(client.recv().expect("recv"), Response::Solve(s) if s.id == 1),
        "the solve must answer first"
    );
    assert!(matches!(
        client.recv().expect("recv"),
        Response::Pong { id: 2 }
    ));
    assert!(matches!(
        client.recv().expect("recv"),
        Response::Stats { id: 3, .. }
    ));
    handle.shutdown();
    handle.wait();
}

/// Isolation: a client that sends requests and then never reads must not
/// stall a well-behaved client on another connection. The stalled
/// connection's responses pile up in its own write buffer; the healthy
/// connection keeps being served by the same workers.
#[test]
fn a_stalled_reader_does_not_stall_another_connections_solves() {
    let handle = server::start("127.0.0.1:0", tiny_config(1)).expect("bind");
    let addr = handle.local_addr().to_string();

    // Warm the session first so the stalled client's requests are cheap
    // for the server and the test exercises write-side stalling, not the
    // one-off warm-up.
    let mut warmer = ServiceClient::connect(&addr).expect("connect");
    match warmer
        .call(&Request::Solve(solve_request(1, Algorithm::Rma, 0.1)))
        .expect("warm solve")
    {
        Response::Solve(_) => {}
        other => panic!("expected a solve, got {other:?}"),
    }

    // The hostile client: firehose of solves, never reads a byte.
    let mut stalled = TcpStream::connect(&addr).expect("connect");
    for id in 1..=200u64 {
        let mut line = Request::Solve(solve_request(id, Algorithm::Rma, 0.1)).render();
        line.push('\n');
        stalled.write_all(line.as_bytes()).expect("send");
    }
    stalled.flush().expect("flush");

    // The healthy client must still get solves, promptly.
    let healthy = TcpStream::connect(&addr).expect("connect");
    healthy
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut reader = BufReader::new(healthy.try_clone().expect("clone"));
    let mut writer = healthy;
    let started = Instant::now();
    for id in 1..=5u64 {
        let mut line = Request::Solve(solve_request(id, Algorithm::OneBatch, 0.2)).render();
        line.push('\n');
        writer.write_all(line.as_bytes()).expect("send");
        let mut answer = String::new();
        reader
            .read_line(&mut answer)
            .expect("a healthy client must be answered while another connection stalls");
        assert!(
            matches!(
                Response::parse(answer.trim_end()).expect("parse"),
                Response::Solve(s) if s.id == id
            ),
            "healthy client got a wrong response for id {id}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(55),
        "healthy solves took implausibly long next to a stalled reader"
    );

    drop(stalled); // now let the server clean the hostile connection up
    handle.shutdown();
    handle.wait();
}

/// Backpressure: a single connection may not hold more than
/// `max_inflight` requests in the solver queue; the overflow waits in
/// the connection's read buffer and is answered later, in order.
#[test]
fn more_requests_than_max_inflight_still_all_answer_in_order() {
    let config = ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(2)
        .max_sessions(2)
        .max_inflight(4)
        .build()
        .expect("valid config");
    let handle = server::start("127.0.0.1:0", config).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let requests = request_population(32);
    for request in &requests {
        client.send(&Request::Solve(request.clone())).expect("send");
    }
    for expected in &requests {
        match client.recv().expect("recv") {
            Response::Solve(solve) => assert_eq!(solve.id, expected.id),
            other => panic!("expected a solve for id {}, got {other:?}", expected.id),
        }
    }
    handle.shutdown();
    handle.wait();
}
