//! Golden-file pins of the wire schema, one file per supported version.
//!
//! `tests/golden/wire_v1.jsonl` holds the frozen v1 rendering of one
//! canonical message per kind — v1 clients must keep receiving exactly
//! these bytes. `tests/golden/wire_v2.jsonl` holds the v2 envelope of
//! the same messages (typed error codes, `protocol` in pong). If this
//! test fails after an intentional schema change, bump
//! [`rmsa_service::WIRE_SCHEMA_VERSION`], add a new golden, and
//! regenerate with
//! `RMSA_BLESS=1 cargo test -p rmsa-service --test wire_golden` —
//! never re-bless an old version's file.

use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use rmsa_service::wire::{
    Algorithm, ErrorCode, ExemplarEntry, FlightEventEntry, HistogramStats, MetricsReport, Request,
    Response, SessionStatsEntry, SolveRequest, SolveResponse, SolveResult, SolveTiming, SpanEntry,
    TraceReport, WarmRequest, WarmResponse,
};

fn golden_path(version: u32) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(format!("tests/golden/wire_v{version}.jsonl"))
}

fn canonical_messages(version: u32) -> Vec<String> {
    let solve = SolveRequest {
        id: 1,
        dataset: DatasetKind::LastfmSyn,
        strategy: RrStrategy::Standard,
        algorithm: Algorithm::Rma,
        incentive: IncentiveModel::Linear,
        alpha: 0.3,
        evaluate: true,
    };
    let mut requests = vec![
        Request::Solve(solve),
        Request::Warm(WarmRequest {
            id: 2,
            dataset: DatasetKind::FlixsterSyn,
            strategy: RrStrategy::Subsim,
            target_rr: Some(100_000),
        }),
        Request::Stats { id: 3 },
        Request::Ping { id: 4 },
        Request::Shutdown { id: 5 },
    ];
    let mut responses = vec![
        Response::Solve(SolveResponse {
            id: 1,
            session: "lastfm-syn/standard".into(),
            result: SolveResult {
                algorithm: "RMA".into(),
                revenue: Some(812.5),
                revenue_estimate: 800.25,
                revenue_lower_bound: Some(750.125),
                seeding_cost: 120.5,
                seeds: 42,
                feasible: true,
                capped: false,
                iterations: 3,
                rr_used: 10000,
                rr_generated: 0,
                index_extended: 0,
                allocation_digest: "0123456789abcdef".into(),
            },
            timing: SolveTiming {
                queue_secs: 0.25,
                solve_secs: 1.5,
                batch_size: 4,
                // The phase fields and trace render only under v2; the
                // v1 golden stays byte-frozen.
                batch_wait_secs: 0.05,
                warm_secs: 0.01,
                serialize_secs: 0.002,
                flush_secs: 0.001,
                trace: 7,
            },
        }),
        Response::Warm(WarmResponse {
            id: 2,
            session: "flixster-syn/subsim".into(),
            target_rr: 100000,
            generated: 200000,
            already_warm: false,
        }),
        Response::Stats {
            id: 3,
            sessions: vec![SessionStatsEntry {
                session: "lastfm-syn/standard".into(),
                served: 24,
                warm_extensions: 1,
                warm_target: 5000,
                rr_generated: 15000,
                rr_requested: 480000,
                index_extended: 15000,
                memory_bytes: 4194304,
                loaded_from_snapshot: false,
                snapshot_load_secs: 0.0,
            }],
            evictions: 1,
        },
        Response::Pong { id: 4 },
        Response::ShuttingDown { id: 5 },
        Response::Error {
            id: 6,
            code: ErrorCode::UnknownDataset,
            message: "unknown dataset \"nope\"".into(),
        },
    ];
    // The obs surface (metrics/trace) is v2-only; v1 never learns the ops.
    if version > 1 {
        requests.push(Request::Metrics { id: 7 });
        requests.push(Request::Trace {
            id: 8,
            limit: 4,
            slowest: false,
            trace: 0,
        });
        requests.push(Request::Trace {
            id: 9,
            limit: 1,
            slowest: false,
            trace: 7,
        });
        requests.push(Request::Flight { id: 10 });
        responses.push(Response::Metrics {
            id: 7,
            report: MetricsReport {
                counters: vec![("memo_hits".into(), 3), ("requests_total".into(), 12)],
                gauges: vec![("queue_depth".into(), 2)],
                histograms: vec![HistogramStats {
                    name: "rpc_solve_secs".into(),
                    count: 12,
                    mean_secs: 0.125,
                    p50_secs: 0.1,
                    p90_secs: 0.25,
                    p99_secs: 0.5,
                    max_secs: 0.5,
                    exemplars: vec![ExemplarEntry {
                        trace: 7,
                        value_secs: 0.5,
                        at_us: 1250,
                    }],
                }],
            },
        });
        responses.push(Response::Trace {
            id: 8,
            traces: vec![TraceReport {
                trace: 7,
                total_us: 1500,
                status: "ok".into(),
                pinned: true,
                spans: vec![
                    SpanEntry {
                        id: 1,
                        parent: 0,
                        name: "solve".into(),
                        start_us: 0,
                        dur_us: 1500,
                        fields: vec![],
                    },
                    SpanEntry {
                        id: 2,
                        parent: 1,
                        name: "greedy".into(),
                        start_us: 250,
                        dur_us: 1000,
                        fields: vec![("rr_used".into(), 10000.0)],
                    },
                ],
            }],
        });
        responses.push(Response::Flight {
            id: 10,
            events: vec![
                FlightEventEntry {
                    kind: "conn_open".into(),
                    seq: 1,
                    at_us: 100,
                    a: 1,
                    b: 0,
                },
                FlightEventEntry {
                    kind: "anomaly_slow".into(),
                    seq: 2,
                    at_us: 1700,
                    a: 7,
                    b: 1500,
                },
            ],
        });
    }
    requests
        .iter()
        .map(|r| r.render_for(version))
        .chain(responses.iter().map(|r| r.render_for(version)))
        .collect()
}

fn assert_matches_golden(version: u32) {
    let lines = canonical_messages(version);
    let rendered = lines.join("\n") + "\n";
    let path = golden_path(version);
    if std::env::var("RMSA_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        golden, rendered,
        "wire schema v{version} drifted from tests/golden/wire_v{version}.jsonl — \
         if intentional, bump WIRE_SCHEMA_VERSION, add a new golden, and re-bless"
    );
}

#[test]
fn wire_schema_v1_matches_the_golden_file() {
    assert_matches_golden(1);
}

#[test]
fn wire_schema_v2_matches_the_golden_file() {
    assert_matches_golden(2);
}

#[test]
fn golden_lines_parse_back_losslessly() {
    for version in [1u32, 2] {
        let golden = std::fs::read_to_string(golden_path(version)).expect("read golden file");
        let mut parsed_requests = 0;
        let mut parsed_responses = 0;
        for line in golden.lines() {
            // Responses carry `ok`; requests never do.
            let doc = rmsa_bench::json::parse(line).expect("golden line is JSON");
            if doc.get("ok").is_some() {
                let response = Response::parse(line).expect("response parses");
                assert_eq!(response.render_for(version), line);
                if version == 1 {
                    // v1 strips error codes → the parse-side neutral default.
                    if let Response::Error { code, .. } = &response {
                        assert_eq!(*code, ErrorCode::BadRequest, "v1 neutral default");
                    }
                }
                parsed_responses += 1;
            } else {
                let (parsed_version, request) =
                    Request::parse_versioned(line).expect("request parses");
                assert_eq!(parsed_version, version);
                assert_eq!(request.render_for(version), line);
                parsed_requests += 1;
            }
        }
        // v2 adds the metrics/trace/trace-by-id/flight requests and the
        // metrics/trace/flight responses.
        assert_eq!(parsed_requests, if version == 1 { 5 } else { 9 });
        assert_eq!(parsed_responses, if version == 1 { 6 } else { 9 });
    }
}
