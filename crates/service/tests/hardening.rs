//! Serving-robustness tests added alongside the `rmsa lint` panic
//! discipline: no request a client can put on the wire may kill a worker
//! thread, and the warm/solve pipeline must be schedule-oblivious — the
//! response payloads are bit-identical no matter how threads interleave
//! session eviction with same-fingerprint admission batching.

use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use rmsa_service::wire::{Algorithm, Request, Response, SolveRequest, SolveResult};
use rmsa_service::{server, ServerConfig, SessionKey, SessionRegistry};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn solve_request(id: u64, algorithm: Algorithm, alpha: f64) -> SolveRequest {
    SolveRequest {
        id,
        dataset: DatasetKind::LastfmSyn,
        strategy: RrStrategy::Standard,
        algorithm,
        incentive: IncentiveModel::Linear,
        alpha,
        evaluate: true,
    }
}

/// A daemon with exactly ONE worker is fed every malformed/invalid shape a
/// client can produce, then asked for a real solve. If any of the bad
/// requests had panicked the lone worker (or the event loop), the solve
/// could never be answered — the read timeout below would trip.
#[test]
fn no_wire_request_can_kill_the_single_worker() {
    let config = ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(1)
        .max_sessions(2)
        .build()
        .expect("valid config");
    let handle = server::start("127.0.0.1:0", config).expect("bind");
    let addr = handle.local_addr();

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut call = |line: &str| -> Response {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        let mut answer = String::new();
        reader
            .read_line(&mut answer)
            .expect("a response before the timeout — did a worker die?");
        Response::parse(answer.trim_end()).expect("parse response")
    };

    // Every hostile shape must come back as a typed wire error.
    let hostile = [
        "this is not json",
        "{}",
        r#"{"schema_version":9,"id":1,"op":"ping"}"#,
        r#"{"schema_version":1,"id":2,"op":"warp"}"#,
        r#"{"schema_version":1,"id":3,"op":"solve","dataset":"nope","algorithm":"rma","alpha":0.1}"#,
        r#"{"schema_version":1,"id":4,"op":"solve","dataset":"lastfm-syn","algorithm":"rma","alpha":-0.5}"#,
        r#"{"schema_version":1,"id":5,"op":"solve","dataset":"lastfm-syn","algorithm":"sorcery","alpha":0.1}"#,
        r#"{"schema_version":1,"id":6,"op":"solve","dataset":"lastfm-syn","algorithm":"rma","alpha":0.1,"incentive":"bribes"}"#,
        // v2 shapes: missing id, missing alpha, unknown op.
        r#"{"schema_version":2,"op":"ping"}"#,
        r#"{"schema_version":2,"id":10,"op":"solve","dataset":"lastfm-syn","algorithm":"rma"}"#,
        r#"{"schema_version":2,"id":11,"op":"divine"}"#,
    ];
    for line in hostile {
        let response = call(line);
        assert!(
            matches!(response, Response::Error { .. }),
            "{line} must get a typed error, got {response:?}"
        );
    }

    // A warm actually reaches the worker…
    let warm = call(
        r#"{"schema_version":1,"id":7,"op":"warm","dataset":"lastfm-syn","strategy":"standard"}"#,
    );
    assert!(matches!(warm, Response::Warm(_)), "got {warm:?}");
    // …and the lone worker still serves a full solve afterwards.
    let solve = call(&Request::Solve(solve_request(8, Algorithm::Rma, 0.2)).render());
    let Response::Solve(solve) = solve else {
        panic!("expected a solve response, got {solve:?}");
    };
    assert_eq!(solve.id, 8);
    assert_eq!(solve.result.rr_generated, 0, "warm invariant");
    assert!(!solve.result.allocation_digest.is_empty());

    handle.shutdown();
    handle.wait();
}

/// Deterministic xorshift64 for the schedule shuffles below.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = Rng(seed | 1);
    for i in (1..items.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[derive(Clone)]
enum Op {
    /// `session(A)` + warm + solve — the serve_batch path.
    Solve(SolveRequest),
    /// `session(key)` + warm on a *different* fingerprint, which under
    /// `max_sessions = 2` forces LRU evictions mid-run.
    Churn(DatasetKind),
}

/// Run one schedule: the op multiset is dealt across 4 threads in a
/// seed-permuted order and executed concurrently against a fresh registry.
/// Returns the solve results by request id, plus the warm-extension count
/// of every session *generation* (distinct `Arc<Session>`) touched.
fn run_schedule(seed: u64) -> (BTreeMap<u64, SolveResult>, Vec<usize>, usize) {
    let registry = SessionRegistry::new(rmsa_service::tiny_serve_ctx(7), 2);

    let mut ops: Vec<Op> = Vec::new();
    let table = [
        (Algorithm::Rma, 0.1),
        (Algorithm::OneBatch, 0.2),
        (Algorithm::TiCarm, 0.3),
        (Algorithm::Rma, 0.3),
        (Algorithm::OneBatch, 0.1),
        (Algorithm::TiCsrm, 0.2),
    ];
    for (i, (algorithm, alpha)) in table.into_iter().enumerate() {
        ops.push(Op::Solve(solve_request(i as u64 + 1, algorithm, alpha)));
    }
    ops.push(Op::Churn(DatasetKind::FlixsterSyn));
    ops.push(Op::Churn(DatasetKind::DblpSyn));
    seeded_shuffle(&mut ops, seed);

    let results: Mutex<BTreeMap<u64, SolveResult>> = Mutex::new(BTreeMap::new());
    let generations: Mutex<Vec<Arc<rmsa_service::Session>>> = Mutex::new(Vec::new());
    const THREADS: usize = 4;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let lane: Vec<Op> = ops
                .iter()
                .enumerate()
                .filter(|(i, _)| i % THREADS == t)
                .map(|(_, op)| op.clone())
                .collect();
            let registry = &registry;
            let results = &results;
            let generations = &generations;
            scope.spawn(move || {
                for op in lane {
                    let key = match &op {
                        Op::Solve(r) => SessionKey::from(r),
                        Op::Churn(dataset) => SessionKey {
                            dataset: *dataset,
                            strategy: RrStrategy::Standard,
                        },
                    };
                    let session = registry.session(key);
                    session.ensure_warm(None);
                    if let Op::Solve(request) = &op {
                        let result = session.solve(request).expect("solve");
                        results
                            .lock()
                            .expect("results lock")
                            .insert(request.id, result);
                    }
                    generations.lock().expect("generations lock").push(session);
                }
            });
        }
    });

    let mut seen: Vec<Arc<rmsa_service::Session>> = Vec::new();
    for session in generations.into_inner().expect("generations") {
        if !seen.iter().any(|s| Arc::ptr_eq(s, &session)) {
            seen.push(session);
        }
    }
    let extensions = seen
        .iter()
        .map(|s| s.stats_entry().warm_extensions)
        .collect();
    let results = results.into_inner().expect("results");
    (results, extensions, registry.evictions())
}

/// The headline schedule-obliviousness invariant: permuting which thread
/// runs which op — with evictions landing at different points every time —
/// changes neither a single response payload nor the one-extension-per-
/// generation warm discipline.
#[test]
fn schedule_permutations_are_response_invariant() {
    let (baseline, extensions, evictions) = run_schedule(0xA11CE);
    assert_eq!(baseline.len(), 6, "every solve must be answered");
    assert!(
        evictions > 0,
        "3 fingerprints under max_sessions = 2 must evict"
    );
    for (id, result) in &baseline {
        // TI baselines deterministically build private per-advertiser
        // collections inside the solve; only the shared-cache solvers are
        // bound by the zero-generation warm invariant.
        if !result.algorithm.starts_with("TI") {
            assert_eq!(result.rr_generated, 0, "solve {id} ran on a cold session");
            assert_eq!(result.index_extended, 0);
        }
        assert!(result.revenue.is_some());
    }
    assert!(
        extensions.iter().all(|&e| e == 1),
        "each session generation must warm exactly once, got {extensions:?}"
    );

    for seed in [0xB0B, 0xC0FFEE, 0xDEADBEE] {
        let (permuted, extensions, evictions) = run_schedule(seed);
        assert_eq!(
            permuted, baseline,
            "seed {seed:#x}: responses must be bit-identical under any schedule"
        );
        assert!(evictions > 0, "seed {seed:#x}: churn must evict");
        assert!(
            extensions.iter().all(|&e| e == 1),
            "seed {seed:#x}: a generation warmed twice: {extensions:?}"
        );
    }
}
