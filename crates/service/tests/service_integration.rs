//! End-to-end tests of the `rmsa serve` daemon over real TCP.
//!
//! The headline invariant: for a fixed master seed, loadgen's canonical
//! response bytes are identical whether the daemon runs 1 or 8 workers
//! and regardless of how concurrent clients interleave — and a group of
//! same-fingerprint requests hitting a cold session triggers exactly one
//! RR-cache extension.

use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use rmsa_service::loadgen::{self, LoadgenPlan};
use rmsa_service::wire::{Algorithm, Request, Response, SolveRequest, WarmRequest};
use rmsa_service::{server, ServerConfig, ServiceClient};

fn tiny_config(workers: usize) -> ServerConfig {
    ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(workers)
        .max_sessions(2)
        .build()
        .expect("valid config")
}

fn solve_request(id: u64, algorithm: Algorithm, alpha: f64) -> SolveRequest {
    SolveRequest {
        id,
        dataset: DatasetKind::LastfmSyn,
        strategy: RrStrategy::Standard,
        algorithm,
        incentive: IncentiveModel::Linear,
        alpha,
        evaluate: true,
    }
}

/// Start a daemon, run the quick load, shut it down, return the
/// canonical response lines.
fn load_canonical(workers: usize) -> Vec<String> {
    let handle = server::start("127.0.0.1:0", tiny_config(workers)).expect("bind");
    let addr = handle.local_addr().to_string();
    let plan = LoadgenPlan::quick(7);
    let outcome = loadgen::run(&addr, &plan).expect("loadgen");
    assert_eq!(outcome.errors, Vec::<String>::new());
    assert_eq!(outcome.responses.len(), plan.total_requests());
    handle.shutdown();
    handle.wait();
    outcome.canonical_lines()
}

#[test]
fn loadgen_responses_are_bit_identical_for_1_and_8_workers() {
    let one = load_canonical(1);
    let eight = load_canonical(8);
    assert_eq!(one.len(), 24);
    assert_eq!(
        one, eight,
        "canonical response bytes must not depend on the worker count"
    );
    // Responses carry real payloads, not empty husks.
    assert!(one.iter().all(|l| l.contains("allocation_digest")));
    assert!(one.iter().any(|l| l.contains("\"RMA\"")));
    assert!(one.iter().any(|l| l.contains("\"TI-CARM\"")));
}

#[test]
fn a_batched_group_of_same_fingerprint_requests_extends_the_cache_once() {
    let handle = server::start("127.0.0.1:0", tiny_config(4)).expect("bind");
    let addr = handle.local_addr().to_string();
    const N: usize = 8;
    // N concurrent clients fire same-fingerprint solves at a cold session.
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(&addr).expect("connect");
                    client
                        .call(&Request::Solve(solve_request(
                            i as u64 + 1,
                            Algorithm::Rma,
                            0.2,
                        )))
                        .expect("solve")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let mut solves = 0;
    for response in &responses {
        let Response::Solve(solve) = response else {
            panic!("expected a solve response, got {response:?}");
        };
        solves += 1;
        assert_eq!(
            solve.result.rr_generated, 0,
            "the warm-up, not the solves, must do all generation"
        );
        assert_eq!(
            solve.result.index_extended, 0,
            "no solve may extend the coverage index"
        );
    }
    assert_eq!(solves, N);

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let Response::Stats { sessions, .. } = client.call(&Request::Stats { id: 99 }).expect("stats")
    else {
        panic!("expected stats");
    };
    assert_eq!(sessions.len(), 1);
    let session = &sessions[0];
    assert_eq!(session.session, "lastfm-syn/standard");
    assert_eq!(session.served, N);
    assert_eq!(
        session.warm_extensions, 1,
        "N same-fingerprint requests must trigger exactly one extension"
    );
    assert!(
        session.rr_generated > 0,
        "the single warm-up really generated"
    );
    assert_eq!(
        session.index_extended, session.rr_generated,
        "every generated RR-set indexed exactly once, nothing rebuilt"
    );
    assert!(session.memory_bytes > 0);

    handle.shutdown();
    handle.wait();
}

#[test]
fn warm_rpc_pre_extends_and_solves_report_reuse() {
    let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");

    let warm = Request::Warm(WarmRequest {
        id: 1,
        dataset: DatasetKind::LastfmSyn,
        strategy: RrStrategy::Standard,
        target_rr: None,
    });
    let Response::Warm(first) = client.call(&warm).expect("warm") else {
        panic!("expected warm response");
    };
    assert!(!first.already_warm);
    assert!(first.generated > 0);
    let Response::Warm(second) = client.call(&warm).expect("warm") else {
        panic!("expected warm response");
    };
    assert!(second.already_warm);
    assert_eq!(second.generated, 0);

    let Response::Solve(solve) = client
        .call(&Request::Solve(solve_request(3, Algorithm::OneBatch, 0.1)))
        .expect("solve")
    else {
        panic!("expected solve response");
    };
    assert_eq!(solve.result.rr_generated, 0);
    assert_eq!(solve.session, "lastfm-syn/standard");
    assert!(solve.timing.batch_size >= 1);

    handle.shutdown();
    handle.wait();
}

#[test]
fn a_wire_shutdown_alone_stops_the_daemon() {
    // Regression test: a `shutdown` request arriving over TCP must fully
    // stop the daemon — event loop, workers, and background persists —
    // otherwise `rmsa serve` never exits and the CI smoke step hangs at
    // `wait()`.
    let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");
    assert!(matches!(
        client.call(&Request::Shutdown { id: 1 }).expect("shutdown"),
        Response::ShuttingDown { id: 1 }
    ));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.wait();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(20))
        .expect("daemon must fully exit after a wire shutdown");
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    let handle = server::start("127.0.0.1:0", tiny_config(1)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");

    // A malformed line on a raw connection gets an error response and the
    // connection lives on.
    use std::io::Write as _;
    let mut garbage = std::net::TcpStream::connect(&addr).expect("connect");
    garbage.write_all(b"this is not json\n").expect("send");
    let mut reader = std::io::BufReader::new(garbage.try_clone().expect("clone"));
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    let parsed = Response::parse(line.trim_end()).expect("parse error response");
    assert!(matches!(parsed, Response::Error { .. }));

    // Ping still works, and an unknown-dataset solve errors gracefully.
    assert!(matches!(
        client.call(&Request::Ping { id: 5 }).expect("ping"),
        Response::Pong { id: 5 }
    ));
    let bad = r#"{"schema_version":1,"id":6,"op":"solve","dataset":"nope","algorithm":"rma","alpha":0.1}"#;
    garbage.write_all(bad.as_bytes()).expect("send");
    garbage.write_all(b"\n").expect("send");
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("read");
    assert!(matches!(
        Response::parse(line.trim_end()).expect("parse"),
        Response::Error { .. }
    ));

    handle.shutdown();
    handle.wait();
}

#[test]
fn snapshot_restart_is_warm_and_bit_identical() {
    // The round-trip invariant, end to end over real TCP: run a daemon
    // with --snapshot-dir, drive it, shut it down; a restarted daemon on
    // the same directory must (a) warm-start every session from disk,
    // (b) answer the same seeded load with bit-identical canonical
    // response bytes, and (c) report zero warm extensions — the restart
    // generated no RR-set at all.
    let dir = std::env::temp_dir().join("rmsa_service_snapshot_restart");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let config_with_dir = |workers: usize| {
        ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
            .workers(workers)
            .max_sessions(2)
            .snapshot_dir(Some(dir.clone()))
            .build()
            .expect("valid config")
    };

    // Cold run: builds sessions, persists them in the background.
    let handle = server::start("127.0.0.1:0", config_with_dir(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let load = LoadgenPlan::quick(7);
    let cold = loadgen::run(&addr, &load).expect("loadgen");
    assert_eq!(cold.errors, Vec::<String>::new());
    handle.shutdown();
    handle.wait(); // joins the background persist threads
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        snapshots.iter().any(|n| n.ends_with(".rmsnap")),
        "cold run must persist snapshots, found {snapshots:?}"
    );

    // Warm restart: same directory, different worker count on purpose.
    let handle = server::start("127.0.0.1:0", config_with_dir(4)).expect("bind");
    let addr = handle.local_addr().to_string();
    let warm = loadgen::run(&addr, &load).expect("loadgen");
    assert_eq!(warm.errors, Vec::<String>::new());
    assert_eq!(
        cold.canonical_lines(),
        warm.canonical_lines(),
        "a snapshot restart must answer bit-identically to the cold run"
    );
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let Response::Stats { sessions, .. } = client.call(&Request::Stats { id: 9 }).expect("stats")
    else {
        panic!("expected stats");
    };
    assert!(!sessions.is_empty());
    for session in &sessions {
        assert!(
            session.loaded_from_snapshot,
            "{} must warm-start from disk",
            session.session
        );
        assert_eq!(
            session.warm_extensions, 0,
            "{} restarted warm — no extension allowed",
            session.session
        );
        assert_eq!(
            session.rr_generated, 0,
            "{} must not generate a single RR-set after a warm restart",
            session.session
        );
        assert!(session.snapshot_load_secs > 0.0);
    }
    handle.shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_report_matches_itself_across_runs_and_feeds_compare() {
    use rmsa_bench::report::{compare_reports, Tolerance};
    let make = || {
        let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
        let addr = handle.local_addr().to_string();
        let plan = LoadgenPlan::quick(7);
        let outcome = loadgen::run(&addr, &plan).expect("loadgen");
        handle.shutdown();
        handle.wait();
        loadgen::report(&outcome, &plan, true)
    };
    let a = make();
    let b = make();
    // Revenue-style metrics are deterministic → a tight gate passes.
    let tolerance = Tolerance {
        metric_frac: 0.0,
        time_frac: 1_000.0,
        min_time_secs: 1_000.0,
    };
    let regressions = compare_reports(&a, &b, &tolerance);
    assert_eq!(regressions, Vec::new(), "deterministic metrics must match");
    assert!(a.points.iter().any(|p| p.job == "latency,"));
    assert!(a.points.iter().any(|p| p.job == "throughput,"));
    assert!(a
        .points
        .iter()
        .any(|p| p.job == "lastfm-syn," && p.outcome.algorithm == "RMA"));
    // The report round-trips through its JSON rendering.
    let parsed = rmsa_bench::BenchReport::from_json_text(&a.render()).expect("parse");
    assert_eq!(parsed.points.len(), a.points.len());
}

#[test]
fn a_solve_yields_a_retrievable_phase_tree_and_nonzero_rpc_histograms() {
    let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut client = ServiceClient::connect(&addr).expect("connect");

    // One cold solve: the warm-up generates, the solver runs greedy.
    let Response::Solve(solve) = client
        .call(&Request::Solve(solve_request(1, Algorithm::Rma, 0.2)))
        .expect("solve")
    else {
        panic!("expected solve response");
    };
    assert_ne!(solve.timing.trace, 0, "v2 solves must echo their trace id");

    // The trace RPC hands back that request's phase tree.
    let Response::Trace { traces, .. } = client
        .call(&Request::Trace {
            id: 2,
            limit: 16,
            slowest: false,
            trace: 0,
        })
        .expect("trace")
    else {
        panic!("expected trace response");
    };
    let tree = traces
        .iter()
        .find(|t| t.trace == solve.timing.trace)
        .expect("the solve's trace is retrievable by its echoed id");
    let find = |name: &str| {
        tree.spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("trace missing a {name:?} span: {:?}", tree.spans))
    };
    for phase in ["parse", "batch_wait", "warm_check", "solve", "serialize"] {
        find(phase);
    }
    // Parent ids are consistent: every non-root parent is a span of this
    // same trace, and the phase tree nests the way the pipeline runs —
    // generation under the warm check, greedy under the solve.
    let ids: std::collections::BTreeSet<u64> = tree.spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), tree.spans.len(), "span ids are unique");
    for span in &tree.spans {
        assert!(
            span.parent == 0 || ids.contains(&span.parent),
            "span {:?} has a dangling parent {}",
            span.name,
            span.parent
        );
    }
    assert_eq!(find("generate").parent, find("warm_check").id);
    assert_eq!(find("greedy").parent, find("solve").id);

    // The metrics RPC reports the solve in the per-RPC latency histogram.
    let Response::Metrics { report, .. } =
        client.call(&Request::Metrics { id: 3 }).expect("metrics")
    else {
        panic!("expected metrics response");
    };
    let rpc_solve = report
        .histograms
        .iter()
        .find(|h| h.name == "rpc_solve_secs")
        .expect("rpc_solve_secs histogram registered");
    assert!(rpc_solve.count >= 1);
    assert!(rpc_solve.max_secs > 0.0);
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name:?} missing: {:?}", report.counters))
    };
    assert!(counter("requests_total") >= 1);
    assert!(counter("rr_generated_total") > 0, "cold solve generated");

    handle.shutdown();
    handle.wait();
}

#[test]
fn open_loop_load_reports_gated_throughput_and_matches_closed_mix() {
    use rmsa_service::loadgen::Mode;
    let handle = server::start("127.0.0.1:0", tiny_config(2)).expect("bind");
    let addr = handle.local_addr().to_string();
    let plan = LoadgenPlan::builder(7)
        .mode(Mode::OpenLoop { rate_hz: 400.0 })
        .requests(48)
        .build()
        .expect("valid plan");
    let outcome = loadgen::run(&addr, &plan).expect("loadgen");
    assert_eq!(outcome.errors, Vec::<String>::new());
    assert_eq!(outcome.responses.len(), 48);
    // Every scheduled id answered exactly once, in id order after sort.
    let ids: Vec<u64> = outcome.responses.iter().map(|(r, _)| r.id).collect();
    assert_eq!(ids, (1..=48).collect::<Vec<u64>>());
    handle.shutdown();
    handle.wait();

    let report = loadgen::report(&outcome, &plan, true);
    assert_eq!(report.scenario, "service_open");
    let throughput = report
        .points
        .iter()
        .find(|p| p.job == "throughput,")
        .expect("throughput row");
    assert!(
        (throughput.outcome.revenue - outcome.throughput()).abs() < 1e-9,
        "open-loop throughput must land in the gated revenue column"
    );
    assert!(throughput.outcome.revenue > 0.0);

    // Every latency quantile row breaks down into per-phase columns, and
    // the gated revenue column carries the attribution share (percent of
    // the end-to-end quantile the phases explain, capped at 100).
    let latency_rows: Vec<_> = report
        .points
        .iter()
        .filter(|p| p.job == "latency,")
        .collect();
    assert_eq!(latency_rows.len(), 3);
    for row in &latency_rows {
        let names: Vec<&str> = row.outcome.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "send_lag",
                "queue",
                "batch_wait",
                "warm_check",
                "solve",
                "serialize",
                "flush",
                "delivery"
            ],
            "open-loop latency rows carry the full phase breakdown"
        );
        assert!(row.outcome.phases.iter().all(|(_, secs)| *secs >= 0.0));
        assert!(
            row.outcome.revenue >= 90.0 && row.outcome.revenue <= 100.0,
            "the breakdown (delivery residual included) must explain \
             at least 90% of the end-to-end quantile, got {}",
            row.outcome.revenue
        );
    }
    // The report (phases included) round-trips through its JSON form.
    let parsed = rmsa_bench::BenchReport::from_json_text(&report.render()).expect("parse");
    let reparsed_row = parsed
        .points
        .iter()
        .find(|p| p.job == "latency," && p.key == 99.0)
        .expect("p99 row survives the round trip");
    let original_row = report
        .points
        .iter()
        .find(|p| p.job == "latency," && p.key == 99.0)
        .expect("p99 row");
    assert_eq!(reparsed_row.outcome.phases, original_row.outcome.phases);
}

#[test]
fn exemplars_flight_and_trace_by_id_link_the_tail_story_together() {
    use rmsa_service::loadgen::{LoadMix, Mode};
    // A 1 ms objective makes the cold solve below an anomaly by
    // construction.
    let config = ServerConfig::builder(rmsa_service::tiny_serve_ctx(7))
        .workers(2)
        .max_sessions(2)
        .slo_ms(1)
        .build()
        .expect("valid config");
    let handle = server::start("127.0.0.1:0", config).expect("bind");
    let addr = handle.local_addr().to_string();
    // Background traffic: fills the histograms and arms the tail sampler.
    let plan = LoadgenPlan::builder(7)
        .mode(Mode::ClosedLoop { clients: 4 })
        .requests(9)
        .mix(LoadMix::quick())
        .build()
        .expect("valid plan");
    let outcome = loadgen::run(&addr, &plan).expect("loadgen");
    assert_eq!(outcome.errors, Vec::<String>::new());

    // A cold-fingerprint solve: no memo entry, fresh session build.
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let Response::Solve(solve) = client
        .call(&Request::Solve(SolveRequest {
            id: 9001,
            dataset: DatasetKind::FlixsterSyn,
            strategy: RrStrategy::Standard,
            algorithm: Algorithm::Rma,
            incentive: IncentiveModel::Linear,
            alpha: 0.2,
            evaluate: true,
        }))
        .expect("solve")
    else {
        panic!("expected solve response");
    };
    let t = solve.timing;
    assert_ne!(t.trace, 0);
    assert!(t.solve_secs > 0.0, "cold solve takes measurable time");
    assert!(t.warm_secs > 0.0, "cold warm-up takes measurable time");
    assert!(t.queue_secs >= 0.0 && t.batch_wait_secs >= 0.0);
    assert!(t.serialize_secs >= 0.0 && t.flush_secs >= 0.0);

    // The echoed trace id resolves through the by-id filter, with a
    // terminal status.
    let Response::Trace { traces, .. } = client
        .call(&Request::Trace {
            id: 9002,
            limit: 1,
            slowest: false,
            trace: t.trace,
        })
        .expect("trace")
    else {
        panic!("expected trace response");
    };
    assert_eq!(traces.len(), 1, "trace-by-id returns exactly that trace");
    assert_eq!(traces[0].trace, t.trace);
    assert_eq!(traces[0].status, "ok");

    // Histogram exemplars point at real traces; the objective gauge is
    // exported.
    let Response::Metrics { report, .. } = client
        .call(&Request::Metrics { id: 9003 })
        .expect("metrics")
    else {
        panic!("expected metrics response");
    };
    let rpc = report
        .histograms
        .iter()
        .find(|h| h.name == "rpc_solve_secs")
        .expect("solve histogram registered");
    assert!(!rpc.exemplars.is_empty(), "served histogram has exemplars");
    assert!(rpc.exemplars.iter().all(|e| e.trace != 0));
    let threshold = report
        .gauges
        .iter()
        .find(|(n, _)| n == "slo_threshold_ms")
        .expect("slo threshold gauge");
    assert_eq!(threshold.1, 1);

    // The flight recorder saw the control plane, in one global order,
    // including the slow anomaly for exactly our cold solve.
    let Response::Flight { events, .. } =
        client.call(&Request::Flight { id: 9004 }).expect("flight")
    else {
        panic!("expected flight response");
    };
    assert!(events.iter().any(|e| e.kind == "conn_open"));
    assert!(events.iter().any(|e| e.kind == "batch_form" && e.a >= 1));
    assert!(
        events
            .iter()
            .any(|e| e.kind == "anomaly_slow" && e.a == t.trace),
        "the 1 ms objective must flag the cold solve"
    );
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "flight events in seq order");
    }
    handle.shutdown();
    handle.wait();
}
