//! Versioned machine-readable bench reports (`BENCH_<scenario>.json`) and
//! the regression comparison behind `rmsa compare`.
//!
//! A [`BenchReport`] is the JSON trajectory record of one scenario run:
//! one point per `(job, sweep key, algorithm)` with wall-clock, RR-set and
//! coverage-index accounting, revenue (plus RMA's certified lower bound)
//! and the exact `memory_bytes()` footprint — plus a [`RunManifest`] footer
//! (git revision, seed, thread count, scale, quick flag) that makes every
//! committed baseline self-describing.
//!
//! [`compare_reports`] diffs two reports: revenue-style metrics regress
//! when the new value drops below `old · (1 − tolerance)`; wall-clock
//! metrics regress when the new value exceeds `old · (1 + time tolerance)`
//! *and* the absolute slowdown exceeds a floor (so sub-100 ms points never
//! flake a CI gate).

use crate::harness::AlgoOutcome;
use crate::json::{self, Json};
use serde::{Deserialize, Serialize};

/// Schema version written into every report.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One `(job, key, algorithm)` measurement of a scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchPoint {
    /// Job label (the CSV row prefix of the job that produced the point).
    pub job: String,
    /// The swept parameter value.
    pub key: f64,
    /// The measured outcome.
    pub outcome: AlgoOutcome,
}

/// Self-description footer: where, how and from what a report was produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// `git rev-parse --short=12 HEAD` when available.
    pub git_rev: Option<String>,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Global scale factor.
    pub scale: f64,
    /// Whether the run used the quick (CI) profile.
    pub quick: bool,
}

impl RunManifest {
    /// Collect the footer from an experiment context and the environment.
    pub fn collect(seed: u64, threads: usize, scale: f64, quick: bool) -> Self {
        RunManifest {
            git_rev: git_revision(),
            seed,
            threads,
            scale,
            quick,
        }
    }
}

/// The current git revision, if the working directory is a repository and
/// `git` is on the PATH.
pub fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// The JSON bench report of one scenario run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Scenario name (`BENCH_<scenario>.json`).
    pub scenario: String,
    /// Human-readable scenario title.
    pub title: String,
    /// Measurement points, in job/sweep order.
    pub points: Vec<BenchPoint>,
    /// End-to-end wall-clock of the whole scenario run, in seconds.
    pub total_wall_secs: f64,
    /// Self-description footer.
    pub run: RunManifest,
}

impl BenchReport {
    /// Peak `memory_bytes()` across all points.
    pub fn peak_memory_bytes(&self) -> usize {
        self.points
            .iter()
            .map(|p| p.outcome.memory_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total RR-sets freshly generated across all points.
    pub fn total_rr_generated(&self) -> usize {
        self.points.iter().map(|p| p.outcome.rr_generated).sum()
    }

    /// Serialize to the on-disk JSON format.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("schema_version", Json::Int(BENCH_SCHEMA_VERSION as i64))
            .set("scenario", Json::Str(self.scenario.clone()))
            .set("title", Json::Str(self.title.clone()))
            .set(
                "points",
                Json::Arr(self.points.iter().map(point_to_json).collect()),
            );
        let mut totals = Json::obj();
        totals
            .set("wall_secs", Json::Num(self.total_wall_secs))
            .set(
                "peak_memory_bytes",
                Json::Int(self.peak_memory_bytes() as i64),
            )
            .set("rr_generated", Json::Int(self.total_rr_generated() as i64));
        doc.set("totals", totals);
        let mut run = Json::obj();
        run.set(
            "git_rev",
            match &self.run.git_rev {
                Some(rev) => Json::Str(rev.clone()),
                None => Json::Null,
            },
        )
        .set("seed", Json::Int(self.run.seed as i64))
        .set("threads", Json::Int(self.run.threads as i64))
        .set("scale", Json::Num(self.run.scale))
        .set("quick", Json::Bool(self.run.quick));
        doc.set("run", run);
        doc
    }

    /// Render the pretty-printed JSON document.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parse a report from JSON text, verifying the schema version.
    pub fn from_json_text(text: &str) -> Result<BenchReport, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(|v| v.as_i64())
            .ok_or("report is missing schema_version")?;
        if version != BENCH_SCHEMA_VERSION as i64 {
            return Err(format!("unsupported bench report schema {version}"));
        }
        let str_field = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(|v| v.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let points = doc
            .get("points")
            .and_then(|v| v.as_arr())
            .ok_or("report is missing points")?
            .iter()
            .map(point_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let run = doc.get("run").ok_or("report is missing run footer")?;
        Ok(BenchReport {
            scenario: str_field(&doc, "scenario")?,
            title: str_field(&doc, "title")?,
            points,
            total_wall_secs: doc
                .get("totals")
                .and_then(|t| t.get("wall_secs"))
                .and_then(|v| v.as_f64())
                .ok_or("report is missing totals.wall_secs")?,
            run: RunManifest {
                git_rev: run
                    .get("git_rev")
                    .and_then(|v| v.as_str())
                    .map(|s| s.to_string()),
                seed: run
                    .get("seed")
                    .and_then(|v| v.as_i64())
                    .ok_or("run.seed missing")? as u64,
                threads: run
                    .get("threads")
                    .and_then(|v| v.as_i64())
                    .ok_or("run.threads missing")? as usize,
                scale: run
                    .get("scale")
                    .and_then(|v| v.as_f64())
                    .ok_or("run.scale missing")?,
                quick: run.get("quick").and_then(|v| v.as_bool()).unwrap_or(false),
            },
        })
    }

    /// Load a report from a file.
    pub fn load(path: &std::path::Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        BenchReport::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn point_to_json(point: &BenchPoint) -> Json {
    let o = &point.outcome;
    let mut p = Json::obj();
    p.set("job", Json::Str(point.job.clone()))
        .set("key", Json::Num(point.key))
        .set("algorithm", Json::Str(o.algorithm.clone()))
        .set("revenue", Json::Num(o.revenue))
        .set(
            "revenue_lower_bound",
            match o.revenue_lower_bound {
                Some(lb) => Json::Num(lb),
                None => Json::Null,
            },
        )
        .set("seeding_cost", Json::Num(o.seeding_cost))
        .set("seeds", Json::Int(o.seeds as i64))
        .set("wall_secs", Json::Num(o.time_secs))
        .set("rr_sets", Json::Int(o.rr_sets as i64))
        .set("rr_generated", Json::Int(o.rr_generated as i64))
        .set("index_secs", Json::Num(o.index_secs))
        .set(
            "loaded_from_snapshot",
            Json::Int(o.loaded_from_snapshot as i64),
        )
        .set("snapshot_load_secs", Json::Num(o.snapshot_load_secs))
        .set("memory_bytes", Json::Int(o.memory_bytes as i64))
        .set("resident_bytes", Json::Int(o.resident_bytes as i64))
        .set("mapped_bytes", Json::Int(o.mapped_bytes as i64))
        .set("budget_usage_pct", Json::Num(o.budget_usage_pct))
        .set("rate_of_return_pct", Json::Num(o.rate_of_return_pct));
    if !o.phases.is_empty() {
        // Additive: only loadgen latency rows carry a breakdown, so
        // every other row (and every pre-attribution baseline) renders
        // byte-identically.
        let mut phases = Json::obj();
        for (name, secs) in &o.phases {
            phases.set(name, Json::Num(*secs));
        }
        p.set("phases", phases);
    }
    p
}

fn point_from_json(p: &Json) -> Result<BenchPoint, String> {
    let f = |key: &str| -> Result<f64, String> {
        p.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("point is missing number {key:?}"))
    };
    let u = |key: &str| -> Result<usize, String> {
        p.get(key)
            .and_then(|v| v.as_i64())
            .map(|i| i.max(0) as usize)
            .ok_or_else(|| format!("point is missing integer {key:?}"))
    };
    let memory_bytes = u("memory_bytes")?;
    // The resident/mapped split arrived with the zero-copy loader;
    // baselines written before it count everything as resident.
    let mapped_bytes = u("mapped_bytes").unwrap_or(0);
    let resident_bytes = u("resident_bytes").unwrap_or(memory_bytes.saturating_sub(mapped_bytes));
    Ok(BenchPoint {
        job: p
            .get("job")
            .and_then(|v| v.as_str())
            .ok_or("point is missing job")?
            .to_string(),
        key: f("key")?,
        outcome: AlgoOutcome {
            algorithm: p
                .get("algorithm")
                .and_then(|v| v.as_str())
                .ok_or("point is missing algorithm")?
                .to_string(),
            revenue: f("revenue")?,
            revenue_lower_bound: p.get("revenue_lower_bound").and_then(|v| v.as_f64()),
            seeding_cost: f("seeding_cost")?,
            seeds: u("seeds")?,
            time_secs: f("wall_secs")?,
            rr_sets: u("rr_sets")?,
            rr_generated: u("rr_generated")?,
            index_secs: f("index_secs")?,
            // Snapshot accounting arrived with the persistence subsystem;
            // baselines written before it simply lack the fields.
            loaded_from_snapshot: u("loaded_from_snapshot").unwrap_or(0),
            snapshot_load_secs: f("snapshot_load_secs").unwrap_or(0.0),
            memory_bytes,
            resident_bytes,
            mapped_bytes,
            memory_mib: memory_bytes as f64 / (1024.0 * 1024.0),
            budget_usage_pct: f("budget_usage_pct")?,
            rate_of_return_pct: f("rate_of_return_pct")?,
            phases: match p.get("phases") {
                Some(Json::Obj(entries)) => entries
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|secs| (k.clone(), secs)))
                    .collect(),
                _ => Vec::new(),
            },
        },
    })
}

/// Regression thresholds for [`compare_reports`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Allowed fractional drop in revenue-style metrics (0.1 = 10 %).
    pub metric_frac: f64,
    /// Allowed fractional wall-clock slowdown.
    pub time_frac: f64,
    /// Absolute wall-clock slack in seconds: a point only counts as a time
    /// regression when the slowdown also exceeds this floor.
    pub min_time_secs: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            metric_frac: 0.10,
            time_frac: 0.10,
            min_time_secs: 0.25,
        }
    }
}

/// One detected regression. Every failure line names the offending
/// metric and shows both values (a missing side prints as `missing`), so
/// a red CI gate is diagnosable from the log alone.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `(job, key, algorithm)` location, or `"totals"`.
    pub location: String,
    /// The offending metric (`revenue`, `revenue_lower_bound`,
    /// `wall_secs`, `total_wall_secs`, or `point` when the whole point
    /// vanished).
    pub metric: String,
    /// Baseline value, when the baseline had one.
    pub old_value: Option<f64>,
    /// New value, when the new report has one.
    pub new_value: Option<f64>,
    /// Why this counts as a regression (tolerance context).
    pub detail: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "missing".to_string(),
        };
        write!(
            f,
            "{}: {} {} -> {} ({})",
            self.location,
            self.metric,
            fmt(self.old_value),
            fmt(self.new_value),
            self.detail
        )
    }
}

/// Compare `new` against the `old` baseline. Returns every detected
/// regression; an empty vector means the gate passes.
pub fn compare_reports(old: &BenchReport, new: &BenchReport, tol: &Tolerance) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let locate = |p: &BenchPoint| format!("{}{} [{}]", p.job, p.key, p.outcome.algorithm);
    for old_point in &old.points {
        let Some(new_point) = new.points.iter().find(|p| {
            p.job == old_point.job
                && p.outcome.algorithm == old_point.outcome.algorithm
                && (p.key - old_point.key).abs() <= 1e-12 * old_point.key.abs().max(1.0)
        }) else {
            regressions.push(Regression {
                location: locate(old_point),
                metric: "point".to_string(),
                old_value: Some(old_point.outcome.revenue),
                new_value: None,
                detail: "point missing from new report (old value is its revenue)".to_string(),
            });
            continue;
        };
        let o = &old_point.outcome;
        let n = &new_point.outcome;
        for (metric, old_v, new_v) in [
            ("revenue", Some(o.revenue), Some(n.revenue)),
            (
                "revenue_lower_bound",
                o.revenue_lower_bound,
                n.revenue_lower_bound,
            ),
        ] {
            let (old_v, new_v) = match (old_v, new_v) {
                (Some(o), Some(n)) => (o, n),
                // A certified bound the baseline had must not vanish.
                (Some(old_v), None) => {
                    regressions.push(Regression {
                        location: locate(old_point),
                        metric: metric.to_string(),
                        old_value: Some(old_v),
                        new_value: None,
                        detail: "metric disappeared from the new report".to_string(),
                    });
                    continue;
                }
                _ => continue,
            };
            if new_v < old_v * (1.0 - tol.metric_frac) - 1e-9 {
                regressions.push(Regression {
                    location: locate(old_point),
                    metric: metric.to_string(),
                    old_value: Some(old_v),
                    new_value: Some(new_v),
                    detail: format!("dropped beyond tolerance {:.1} %", tol.metric_frac * 100.0),
                });
            }
        }
        if n.time_secs > o.time_secs * (1.0 + tol.time_frac)
            && n.time_secs - o.time_secs > tol.min_time_secs
        {
            regressions.push(Regression {
                location: locate(old_point),
                metric: "wall_secs".to_string(),
                old_value: Some(o.time_secs),
                new_value: Some(n.time_secs),
                detail: format!(
                    "slower than tolerance {:.1} % + {:.2}s floor",
                    tol.time_frac * 100.0,
                    tol.min_time_secs
                ),
            });
        }
    }
    if new.total_wall_secs > old.total_wall_secs * (1.0 + tol.time_frac)
        && new.total_wall_secs - old.total_wall_secs > tol.min_time_secs
    {
        regressions.push(Regression {
            location: "totals".to_string(),
            metric: "total_wall_secs".to_string(),
            old_value: Some(old.total_wall_secs),
            new_value: Some(new.total_wall_secs),
            detail: format!(
                "slower than tolerance {:.1} % + {:.2}s floor",
                tol.time_frac * 100.0,
                tol.min_time_secs
            ),
        });
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn outcome(algorithm: &str, revenue: f64, time: f64) -> AlgoOutcome {
        AlgoOutcome {
            algorithm: algorithm.to_string(),
            revenue,
            revenue_lower_bound: Some(revenue * 0.8),
            seeding_cost: 10.0,
            seeds: 5,
            time_secs: time,
            rr_sets: 1000,
            rr_generated: 400,
            index_secs: 0.01,
            loaded_from_snapshot: 0,
            snapshot_load_secs: 0.0,
            memory_bytes: 1 << 20,
            resident_bytes: 1 << 20,
            mapped_bytes: 0,
            memory_mib: 1.0,
            budget_usage_pct: 50.0,
            rate_of_return_pct: 120.0,
            phases: Vec::new(),
        }
    }

    pub(crate) fn report(points: Vec<BenchPoint>, total: f64) -> BenchReport {
        BenchReport {
            scenario: "test".to_string(),
            title: "test scenario".to_string(),
            points,
            total_wall_secs: total,
            run: RunManifest {
                git_rev: Some("abc123def456".to_string()),
                seed: 7,
                threads: 1,
                scale: 0.05,
                quick: true,
            },
        }
    }

    fn point(job: &str, key: f64, o: AlgoOutcome) -> BenchPoint {
        BenchPoint {
            job: job.to_string(),
            key,
            outcome: o,
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let r = report(
            vec![
                point("a,", 0.1, outcome("RMA", 123.456, 1.5)),
                point("a,", 0.2, outcome("TI-CARM", 99.5, 2.25)),
            ],
            4.0,
        );
        let parsed = BenchReport::from_json_text(&r.render()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.peak_memory_bytes(), 1 << 20);
        assert_eq!(parsed.total_rr_generated(), 800);
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.0))], 2.0);
        assert!(compare_reports(&r, &r, &Tolerance::default()).is_empty());
    }

    #[test]
    fn revenue_drop_beyond_tolerance_fails_and_within_passes() {
        let tol = Tolerance {
            metric_frac: 0.10,
            time_frac: 10.0,
            min_time_secs: 60.0,
        };
        let old = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.0))], 2.0);
        // Exactly at the boundary (drop of 10 %) passes…
        let at = report(vec![point("a,", 0.1, outcome("RMA", 90.0, 1.0))], 2.0);
        assert!(compare_reports(&old, &at, &tol).is_empty());
        // …just beyond it fails, on both revenue and the lower bound.
        let beyond = report(vec![point("a,", 0.1, outcome("RMA", 89.9, 1.0))], 2.0);
        let regs = compare_reports(&old, &beyond, &tol);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert_eq!(regs[0].metric, "revenue");
        assert_eq!(regs[0].old_value, Some(100.0));
        assert_eq!(regs[0].new_value, Some(89.9));
        assert_eq!(regs[1].metric, "revenue_lower_bound");
    }

    #[test]
    fn every_failure_line_names_the_metric_and_both_values() {
        // Cover all four regression shapes in one comparison: a missing
        // point, a revenue drop, a vanished lower bound, and time
        // regressions — each printed line must name its metric and show
        // both sides.
        let tol = Tolerance {
            metric_frac: 0.10,
            time_frac: 0.10,
            min_time_secs: 0.0,
        };
        let old = report(
            vec![
                point("a,", 0.1, outcome("RMA", 100.0, 1.0)),
                point("b,", 0.2, outcome("RMA", 50.0, 1.0)),
            ],
            1.0,
        );
        let mut dropped = outcome("RMA", 10.0, 9.0);
        dropped.revenue_lower_bound = None;
        let new = report(vec![point("a,", 0.1, dropped)], 9.0);
        let regs = compare_reports(&old, &new, &tol);
        let lines: Vec<String> = regs.iter().map(|r| r.to_string()).collect();
        assert_eq!(regs.len(), 5, "{lines:?}");
        for (reg, line) in regs.iter().zip(&lines) {
            assert!(!reg.metric.is_empty());
            assert!(line.contains(&reg.metric), "{line}");
            assert!(line.contains("->"), "{line}");
            assert!(reg.old_value.is_some() || reg.new_value.is_some(), "{line}");
        }
        assert!(lines
            .iter()
            .any(|l| l.contains("revenue 100.000 -> 10.000")));
        assert!(lines
            .iter()
            .any(|l| l.contains("revenue_lower_bound 80.000 -> missing")));
        assert!(lines.iter().any(|l| l.contains("wall_secs 1.000 -> 9.000")));
        assert!(lines.iter().any(|l| l.contains("point 50.000 -> missing")));
        assert!(lines
            .iter()
            .any(|l| l.contains("totals: total_wall_secs 1.000 -> 9.000")));
    }

    #[test]
    fn time_regression_needs_both_fraction_and_floor() {
        let tol = Tolerance {
            metric_frac: 1.0,
            time_frac: 0.10,
            min_time_secs: 0.25,
        };
        let old = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.0))], 1.0);
        // +10 % exactly: passes.
        let at = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.1))], 1.1);
        assert!(compare_reports(&old, &at, &tol).is_empty());
        // +20 % but under the absolute floor: passes.
        let small = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.2))], 1.2);
        assert!(compare_reports(&old, &small, &tol).is_empty());
        // +40 %, above the floor: fails per-point and on totals.
        let slow = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.4))], 1.4);
        let regs = compare_reports(&old, &slow, &tol);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|r| r.location == "totals"));
    }

    #[test]
    fn disappearing_lower_bound_is_a_regression() {
        let old = report(vec![point("a,", 0.1, outcome("RMA", 100.0, 1.0))], 2.0);
        let mut new = old.clone();
        new.points[0].outcome.revenue_lower_bound = None;
        let regs = compare_reports(&old, &new, &Tolerance::default());
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "revenue_lower_bound");
        assert_eq!(regs[0].new_value, None);
        assert!(regs[0].detail.contains("disappeared"));
    }

    #[test]
    fn missing_points_are_regressions_and_extra_points_are_not() {
        let old = report(
            vec![
                point("a,", 0.1, outcome("RMA", 100.0, 1.0)),
                point("a,", 0.2, outcome("RMA", 100.0, 1.0)),
            ],
            2.0,
        );
        let new = report(
            vec![
                point("a,", 0.1, outcome("RMA", 100.0, 1.0)),
                point("b,", 0.3, outcome("RMA", 50.0, 9.0)),
            ],
            2.0,
        );
        let regs = compare_reports(&old, &new, &Tolerance::default());
        assert_eq!(regs.len(), 1);
        assert!(regs[0].detail.contains("missing"));
    }
}
