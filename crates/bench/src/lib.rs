//! Shared experiment harness for reproducing the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure: it builds the
//! relevant synthetic dataset(s), assembles RM instances, runs RMA and the
//! TI-CARM / TI-CSRM baselines, evaluates every allocation on an independent
//! RR-set collection, prints the rows the paper reports, and writes a CSV
//! under `results/`.
//!
//! All experiments accept a global scale factor through the `RMSA_SCALE`
//! environment variable (default 1.0): the dataset sizes *and* advertiser
//! budgets are multiplied by it, so `RMSA_SCALE=0.1` runs the whole suite on
//! a laptop in minutes while preserving the comparative shapes.

pub mod harness;
pub mod json;
pub mod manifest;
pub mod report;
pub mod runner;
pub mod sweeps;
pub mod toml_lite;

pub use harness::{
    compare_algorithms, default_rma_config, default_ti_config, run_rma, run_ti, write_csv,
    AlgoOutcome, ExperimentContext,
};
pub use manifest::{Scenario, ScenarioJob, SweepSpec};
pub use report::{compare_reports, BenchReport, RunManifest, Tolerance};
pub use runner::{run_scenario, scenario_main, ScenarioOutput};
