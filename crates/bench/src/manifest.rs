//! Declarative scenario manifests: TOML files under `scenarios/` that
//! describe one experiment (figure or table) as data instead of code.
//!
//! A manifest names the scenario, the CSV column layout, optional
//! [`ExperimentContext`] overrides (plus a `[quick]` section applied in CI /
//! `--quick` mode), and a list of `[[job]]` sweep specifications. Each job
//! is one *workbench group*: a set of sweep points that share a single
//! `Workbench` (and therefore one RR-set cache); the runner executes the
//! points of a job sequentially — so collections extend deterministically —
//! and distinct jobs in parallel (see [`crate::runner`]).
//!
//! ```toml
//! schema = 1
//! name = "fig1_revenue_vs_alpha"
//! title = "Figure 1 — total revenue vs alpha"
//! key_columns = "dataset,incentive,alpha"
//!
//! [quick]
//! scale = 0.05
//!
//! [[job]]
//! sweep = "alpha"           # alpha | epsilon | scalability | demand | rma
//! dataset = "flixster-syn"  #       | datasets | settings
//! incentive = "linear"
//! strategy = "standard"
//! prefix = "flixster-syn,linear,"
//! metrics = ["revenue"]
//! ```

use crate::harness::ExperimentContext;
use crate::sweeps::{RmaParameter, ScalabilitySweep};
use crate::toml_lite::{self, Toml};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use serde::{Deserialize, Serialize};

/// Manifest schema version understood by this build.
pub const MANIFEST_SCHEMA: u32 = 1;

/// Overrides for [`ExperimentContext`] fields; unset fields keep the
/// surrounding value.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CtxOverrides {
    /// Global dataset/budget scale factor.
    pub scale: Option<f64>,
    /// Number of advertisers `h`.
    pub num_ads: Option<usize>,
    /// RR-sets per advertiser for singleton-spread estimation.
    pub spread_rr: Option<usize>,
    /// RR-sets in the independent evaluation collection.
    pub eval_rr: Option<usize>,
    /// Worker threads.
    pub threads: Option<usize>,
    /// Master seed.
    pub seed: Option<u64>,
    /// Cap on RMA's RR-sets per collection.
    pub rma_max_rr: Option<usize>,
    /// Cap on the TI baselines' RR-sets per advertiser.
    pub ti_max_rr: Option<usize>,
    /// RMA accuracy ε.
    pub rma_epsilon: Option<f64>,
    /// Baseline accuracy ε.
    pub ti_epsilon: Option<f64>,
}

impl CtxOverrides {
    /// Apply the set fields onto `ctx`.
    pub fn apply(&self, ctx: &mut ExperimentContext) {
        macro_rules! apply {
            ($($field:ident),*) => {
                $(if let Some(v) = self.$field { ctx.$field = v; })*
            };
        }
        apply!(
            scale,
            num_ads,
            spread_rr,
            eval_rr,
            rma_max_rr,
            ti_max_rr,
            rma_epsilon,
            ti_epsilon
        );
        if let Some(t) = self.threads {
            ctx.threads = t.max(1);
        }
        if let Some(s) = self.seed {
            ctx.seed = s;
        }
    }

    fn from_toml(table: &Toml) -> Result<Self, String> {
        let mut o = CtxOverrides::default();
        for key in table.keys() {
            let v = table.get(key).expect("key just listed");
            match key {
                "scale" => o.scale = Some(req_f64(v, key)?),
                "num_ads" => o.num_ads = Some(req_usize(v, key)?),
                "spread_rr" => o.spread_rr = Some(req_usize(v, key)?),
                "eval_rr" => o.eval_rr = Some(req_usize(v, key)?),
                "threads" => o.threads = Some(req_usize(v, key)?),
                "seed" => o.seed = Some(v.as_u64().ok_or(format!("{key} must be a u64"))?),
                "rma_max_rr" => o.rma_max_rr = Some(req_usize(v, key)?),
                "ti_max_rr" => o.ti_max_rr = Some(req_usize(v, key)?),
                "rma_epsilon" => o.rma_epsilon = Some(req_f64(v, key)?),
                "ti_epsilon" => o.ti_epsilon = Some(req_f64(v, key)?),
                other => return Err(format!("unknown context override {other:?}")),
            }
        }
        Ok(o)
    }
}

/// The sweep a job runs; mirrors the functions in [`crate::sweeps`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SweepSpec {
    /// Figs. 1–3 / 7(c–d) / 10, Table 3: α sweep on one dataset/incentive.
    Alpha {
        /// Dataset to sweep on.
        dataset: DatasetKind,
        /// Incentive cost model.
        incentive: IncentiveModel,
        /// RR-set generation strategy.
        strategy: RrStrategy,
        /// α values (default: [`crate::sweeps::ALPHAS`]).
        values: Option<Vec<f64>>,
    },
    /// Fig. 4: ε sweep (fractions of the admissible range).
    Epsilon {
        /// Dataset to sweep on.
        dataset: DatasetKind,
    },
    /// Fig. 5 / 6: scalability in `h` or in the per-advertiser budget.
    Scalability {
        /// Dataset to sweep on.
        dataset: DatasetKind,
        /// Advertiser-count or budget sweep.
        sweep: ScalabilitySpec,
    },
    /// Tentpole scalability: generator-family graphs swept toward
    /// million-node scale with sharded RR generation and owned-vs-mapped
    /// snapshot load races (see [`crate::sweeps::genscale_sweep`]).
    GenScale {
        /// Generator family ([`crate::sweeps::GENERATOR_FAMILIES`]).
        family: String,
        /// Target node counts (scaled by the context's `scale`).
        nodes: Vec<usize>,
        /// RR-sets generated per (scaled) node.
        rr_per_node: f64,
        /// Number of generation shards.
        shards: usize,
    },
    /// Fig. 7(a–b): holistic total-demand sweep.
    Demand {
        /// Dataset to sweep on.
        dataset: DatasetKind,
        /// Total-demand values `M`.
        values: Vec<f64>,
    },
    /// Figs. 8–9: RMA-only parameter sensitivity (τ or ϱ).
    Rma {
        /// Dataset to sweep on.
        dataset: DatasetKind,
        /// Which parameter is swept.
        parameter: RmaParam,
        /// Parameter values.
        values: Vec<f64>,
    },
    /// Table 1: dataset statistics (no solver runs).
    Datasets,
    /// Table 2: advertiser budget/CPE settings (no solver runs).
    Settings {
        /// Datasets to report.
        datasets: Vec<DatasetKind>,
    },
}

/// Serializable mirror of [`ScalabilitySweep`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScalabilitySpec {
    /// Vary `h` at a fixed per-advertiser budget.
    Advertisers {
        /// Budget shared by every advertiser.
        budget: f64,
        /// The `h` values.
        values: Vec<usize>,
    },
    /// Vary the per-advertiser budget at fixed `h`.
    Budgets {
        /// Fixed number of advertisers.
        num_ads: usize,
        /// The budget values.
        values: Vec<f64>,
    },
}

impl ScalabilitySpec {
    /// Convert into the sweep-runner representation.
    pub fn to_sweep(&self) -> ScalabilitySweep {
        match self {
            ScalabilitySpec::Advertisers { budget, values } => ScalabilitySweep::Advertisers {
                budget: *budget,
                values: values.clone(),
            },
            ScalabilitySpec::Budgets { num_ads, values } => ScalabilitySweep::Budgets {
                num_ads: *num_ads,
                values: values.clone(),
            },
        }
    }
}

/// Serializable mirror of [`RmaParameter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RmaParam {
    /// Binary-search accuracy τ.
    Tau,
    /// Budget-overshoot ϱ.
    Rho,
}

impl RmaParam {
    /// Convert into the sweep-runner representation.
    pub fn to_parameter(self) -> RmaParameter {
        match self {
            RmaParam::Tau => RmaParameter::Tau,
            RmaParam::Rho => RmaParameter::Rho,
        }
    }
}

/// One `[[job]]` of a scenario: a sweep plus its CSV/reporting decoration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioJob {
    /// The sweep to run.
    pub sweep: SweepSpec,
    /// Prefix prepended to every CSV row of this job (ends with a comma
    /// when non-empty); also the job label in `BENCH_*.json` points.
    pub prefix: String,
    /// Optional console table title (default: derived from the prefix).
    pub title: Option<String>,
    /// Metrics printed as console tables (from [`metric_value`] names).
    pub metrics: Vec<String>,
}

/// A parsed scenario manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name: `results/<name>.csv` and `BENCH_<name>.json`.
    pub name: String,
    /// Human-readable description.
    pub title: String,
    /// Comma-separated names of the columns before the per-algorithm
    /// metric columns (e.g. `"dataset,incentive,alpha"`). The last
    /// component labels the sweep key in console tables.
    pub key_columns: String,
    /// Context overrides always applied.
    pub defaults: CtxOverrides,
    /// Additional overrides applied in quick (CI) mode.
    pub quick: CtxOverrides,
    /// The jobs, in CSV row order.
    pub jobs: Vec<ScenarioJob>,
}

impl Scenario {
    /// Parse a manifest from TOML text.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let doc = toml_lite::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_usize())
            .ok_or("manifest needs `schema = 1`")?;
        if schema as u32 != MANIFEST_SCHEMA {
            return Err(format!("unsupported manifest schema {schema}"));
        }
        let name = req_str(&doc, "name")?;
        let title = opt_str(&doc, "title")?.unwrap_or_else(|| name.clone());
        let key_columns = opt_str(&doc, "key_columns")?.unwrap_or_else(|| "key".to_string());
        let defaults = match doc.get("defaults") {
            Some(t) => CtxOverrides::from_toml(t).map_err(|e| format!("[defaults]: {e}"))?,
            None => CtxOverrides::default(),
        };
        let quick = match doc.get("quick") {
            Some(t) => CtxOverrides::from_toml(t).map_err(|e| format!("[quick]: {e}"))?,
            None => CtxOverrides::default(),
        };
        let jobs = match doc.get("job") {
            Some(Toml::TableArray(tables)) => tables
                .iter()
                .enumerate()
                .map(|(i, t)| parse_job(t).map_err(|e| format!("[[job]] #{}: {e}", i + 1)))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`job` must be an array of tables".to_string()),
            None => Vec::new(),
        };
        if jobs.is_empty() {
            return Err("manifest defines no [[job]] entries".to_string());
        }
        // All jobs must share one CSV layout: the fixed `datasets` /
        // `settings` table layouts cannot be mixed with each other or with
        // the standard sweep columns (the header is scenario-wide).
        let layout = |job: &ScenarioJob| match job.sweep {
            SweepSpec::Datasets => "datasets",
            SweepSpec::Settings { .. } => "settings",
            _ => "sweep",
        };
        let first_layout = layout(&jobs[0]);
        if let Some(clash) = jobs.iter().find(|j| layout(j) != first_layout) {
            return Err(format!(
                "jobs mix incompatible CSV layouts ({first_layout} vs {}); split them into \
                 separate scenarios",
                layout(clash)
            ));
        }
        Ok(Scenario {
            name,
            title,
            key_columns,
            defaults,
            quick,
            jobs,
        })
    }

    /// Load a manifest from a file.
    pub fn load(path: &std::path::Path) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The effective context: `base`, then `[defaults]`, then (in quick
    /// mode) the built-in quick profile and `[quick]`. Explicit caller
    /// overrides (CLI flags) are applied last via
    /// [`Scenario::context_with_overrides`].
    pub fn context(&self, base: &ExperimentContext, quick: bool) -> ExperimentContext {
        self.context_with_overrides(base, quick, &CtxOverrides::default())
    }

    /// [`Scenario::context`] with a final layer of explicit overrides that
    /// win over everything, including the quick profile — so
    /// `rmsa bench --quick --scale 0.2` really runs at scale 0.2.
    pub fn context_with_overrides(
        &self,
        base: &ExperimentContext,
        quick: bool,
        overrides: &CtxOverrides,
    ) -> ExperimentContext {
        let mut ctx = base.clone();
        self.defaults.apply(&mut ctx);
        if quick {
            let smoke = ExperimentContext::smoke();
            let mut q = ExperimentContext {
                threads: ctx.threads,
                seed: ctx.seed,
                ..smoke
            };
            self.quick.apply(&mut q);
            ctx = q;
        }
        overrides.apply(&mut ctx);
        ctx
    }

    /// The label of the sweep key (last `key_columns` component).
    pub fn key_label(&self) -> &str {
        self.key_columns.rsplit(',').next().unwrap_or("key")
    }
}

fn parse_job(table: &Toml) -> Result<ScenarioJob, String> {
    let kind = req_str(table, "sweep")?;
    let dataset = |key: &str| -> Result<DatasetKind, String> {
        let name = req_str(table, key)?;
        parse_dataset(&name)
    };
    let f64_values = || -> Result<Option<Vec<f64>>, String> {
        match table.get("values") {
            None => Ok(None),
            Some(v) => v
                .as_arr()
                .ok_or("values must be an array".to_string())?
                .iter()
                .map(|x| x.as_f64().ok_or("values must be numbers".to_string()))
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    };
    let sweep = match kind.as_str() {
        "alpha" => SweepSpec::Alpha {
            dataset: dataset("dataset")?,
            incentive: parse_incentive(&req_str(table, "incentive")?)?,
            strategy: parse_strategy(&opt_str(table, "strategy")?.unwrap_or("standard".into()))?,
            values: f64_values()?,
        },
        "epsilon" => SweepSpec::Epsilon {
            dataset: dataset("dataset")?,
        },
        "scalability" => {
            let mode = req_str(table, "mode")?;
            let sweep = match mode.as_str() {
                "advertisers" => ScalabilitySpec::Advertisers {
                    budget: table
                        .get("budget")
                        .and_then(|v| v.as_f64())
                        .ok_or("advertisers mode needs `budget`")?,
                    values: table
                        .get("values")
                        .and_then(|v| v.as_arr())
                        .ok_or("scalability needs `values`")?
                        .iter()
                        .map(|x| x.as_usize().ok_or("h values must be integers".to_string()))
                        .collect::<Result<Vec<_>, _>>()?,
                },
                "budgets" => ScalabilitySpec::Budgets {
                    num_ads: table
                        .get("num_ads")
                        .and_then(|v| v.as_usize())
                        .ok_or("budgets mode needs `num_ads`")?,
                    values: f64_values()?.ok_or("scalability needs `values`")?,
                },
                other => return Err(format!("unknown scalability mode {other:?}")),
            };
            SweepSpec::Scalability {
                dataset: dataset("dataset")?,
                sweep,
            }
        }
        "genscale" => {
            let family = req_str(table, "family")?;
            if !crate::sweeps::GENERATOR_FAMILIES.contains(&family.as_str()) {
                return Err(format!(
                    "unknown generator family {family:?} (expected one of {:?})",
                    crate::sweeps::GENERATOR_FAMILIES
                ));
            }
            SweepSpec::GenScale {
                family,
                nodes: table
                    .get("nodes")
                    .and_then(|v| v.as_arr())
                    .ok_or("genscale needs `nodes`")?
                    .iter()
                    .map(|x| {
                        x.as_usize()
                            .ok_or("node counts must be integers".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                rr_per_node: match table.get("rr_per_node") {
                    None => 1.0,
                    Some(v) => req_f64(v, "rr_per_node")?,
                },
                shards: match table.get("shards") {
                    None => 8,
                    Some(v) => req_usize(v, "shards")?.max(1),
                },
            }
        }
        "demand" => SweepSpec::Demand {
            dataset: dataset("dataset")?,
            values: f64_values()?.ok_or("demand sweep needs `values`")?,
        },
        "rma" => SweepSpec::Rma {
            dataset: dataset("dataset")?,
            parameter: match req_str(table, "parameter")?.as_str() {
                "tau" => RmaParam::Tau,
                "rho" => RmaParam::Rho,
                other => return Err(format!("unknown RMA parameter {other:?}")),
            },
            values: f64_values()?.ok_or("rma sweep needs `values`")?,
        },
        "datasets" => SweepSpec::Datasets,
        "settings" => SweepSpec::Settings {
            datasets: table
                .get("datasets")
                .and_then(|v| v.as_arr())
                .ok_or("settings sweep needs `datasets`")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .ok_or("datasets must be strings".to_string())
                        .and_then(parse_dataset)
                })
                .collect::<Result<Vec<_>, _>>()?,
        },
        other => return Err(format!("unknown sweep kind {other:?}")),
    };
    let metrics = match table.get("metrics") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or("metrics must be an array".to_string())?
            .iter()
            .map(|x| {
                let name = x.as_str().ok_or("metrics must be strings".to_string())?;
                if !METRIC_NAMES.contains(&name) {
                    return Err(format!("unknown metric {name:?}"));
                }
                Ok(name.to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(ScenarioJob {
        sweep,
        prefix: opt_str(table, "prefix")?.unwrap_or_default(),
        title: opt_str(table, "title")?,
        metrics,
    })
}

/// Metric names accepted in a job's `metrics` list.
pub const METRIC_NAMES: [&str; 10] = [
    "revenue",
    "seeding_cost",
    "seeds",
    "time_secs",
    "rr_sets",
    "rr_generated",
    "index_secs",
    "memory_mib",
    "budget_usage_pct",
    "rate_of_return_pct",
];

/// Format one metric of an [`crate::AlgoOutcome`] the way the figure
/// binaries historically printed it.
pub fn metric_value(outcome: &crate::AlgoOutcome, metric: &str) -> String {
    match metric {
        "revenue" => format!("{:.1}", outcome.revenue),
        "seeding_cost" => format!("{:.1}", outcome.seeding_cost),
        "seeds" => outcome.seeds.to_string(),
        "time_secs" => format!("{:.2}", outcome.time_secs),
        "rr_sets" => outcome.rr_sets.to_string(),
        "rr_generated" => outcome.rr_generated.to_string(),
        "index_secs" => format!("{:.4}", outcome.index_secs),
        "memory_mib" => format!("{:.2}", outcome.memory_mib),
        "budget_usage_pct" => format!("{:.1}", outcome.budget_usage_pct),
        "rate_of_return_pct" => format!("{:.1}", outcome.rate_of_return_pct),
        other => panic!("unknown metric {other:?}"),
    }
}

fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::all()
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown dataset {name:?}"))
}

fn parse_incentive(name: &str) -> Result<IncentiveModel, String> {
    IncentiveModel::all()
        .into_iter()
        .find(|m| m.label() == name)
        .ok_or_else(|| format!("unknown incentive model {name:?}"))
}

fn parse_strategy(name: &str) -> Result<RrStrategy, String> {
    match name {
        "standard" => Ok(RrStrategy::Standard),
        "subsim" => Ok(RrStrategy::Subsim),
        other => Err(format!("unknown RR strategy {other:?}")),
    }
}

fn req_str(table: &Toml, key: &str) -> Result<String, String> {
    table
        .get(key)
        .and_then(|v| v.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn opt_str(table: &Toml, key: &str) -> Result<Option<String>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{key} must be a string")),
    }
}

fn req_f64(v: &Toml, key: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{key} must be a number"))
}

fn req_usize(v: &Toml, key: &str) -> Result<usize, String> {
    v.as_usize()
        .ok_or_else(|| format!("{key} must be a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
schema = 1
name = "mini"
title = "A mini scenario"
key_columns = "dataset,incentive,alpha"

[defaults]
num_ads = 4

[quick]
eval_rr = 9000

[[job]]
sweep = "alpha"
dataset = "lastfm-syn"
incentive = "linear"
strategy = "standard"
prefix = "lastfm-syn,linear,"
values = [0.1, 0.3]
metrics = ["revenue", "time_secs"]
"#;

    #[test]
    fn parses_a_scenario_and_builds_contexts() {
        let s = Scenario::parse(MINI).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.key_label(), "alpha");
        assert_eq!(s.jobs.len(), 1);
        match &s.jobs[0].sweep {
            SweepSpec::Alpha {
                dataset,
                incentive,
                strategy,
                values,
            } => {
                assert_eq!(*dataset, DatasetKind::LastfmSyn);
                assert_eq!(*incentive, IncentiveModel::Linear);
                assert_eq!(*strategy, RrStrategy::Standard);
                assert_eq!(values.as_deref(), Some(&[0.1, 0.3][..]));
            }
            other => panic!("wrong sweep {other:?}"),
        }
        let base = ExperimentContext::smoke();
        let full = s.context(&base, false);
        assert_eq!(full.num_ads, 4);
        assert_eq!(full.eval_rr, base.eval_rr);
        // Quick mode starts from the smoke profile, then applies [quick];
        // threads and seed are inherited from the incoming context.
        let quick = s.context(&base, true);
        assert_eq!(quick.eval_rr, 9000);
        assert_eq!(quick.seed, base.seed);
        assert_eq!(quick.num_ads, ExperimentContext::smoke().num_ads);
    }

    #[test]
    fn rejects_bad_manifests() {
        for (snippet, what) in [
            ("schema = 2\nname = \"x\"", "schema"),
            ("schema = 1", "name"),
            ("schema = 1\nname = \"x\"", "job"),
            (
                "schema = 1\nname = \"x\"\n[[job]]\nsweep = \"warp\"",
                "sweep kind",
            ),
            (
                "schema = 1\nname = \"x\"\n[[job]]\nsweep = \"alpha\"\ndataset = \"nope\"",
                "dataset",
            ),
            (
                "schema = 1\nname = \"x\"\n[[job]]\nsweep = \"alpha\"\ndataset = \"lastfm-syn\"\nincentive = \"linear\"\nmetrics = [\"velocity\"]",
                "metric",
            ),
        ] {
            assert!(Scenario::parse(snippet).is_err(), "{what} should fail");
        }
    }

    #[test]
    fn every_sweep_kind_parses() {
        let text = r#"
schema = 1
name = "all-kinds"

[[job]]
sweep = "epsilon"
dataset = "flixster-syn"

[[job]]
sweep = "scalability"
dataset = "dblp-syn"
mode = "advertisers"
budget = 10000.0
values = [1, 5]

[[job]]
sweep = "scalability"
dataset = "dblp-syn"
mode = "budgets"
num_ads = 5
values = [5000.0, 10000.0]

[[job]]
sweep = "demand"
dataset = "flixster-syn"
values = [2.0, 2.5]

[[job]]
sweep = "rma"
dataset = "lastfm-syn"
parameter = "rho"
values = [0.1, 0.45]
"#;
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.jobs.len(), 5);

        let tables = r#"
schema = 1
name = "table-kinds"

[[job]]
sweep = "datasets"
"#;
        let t = Scenario::parse(tables).unwrap();
        assert!(matches!(t.jobs[0].sweep, SweepSpec::Datasets));
        let settings = r#"
schema = 1
name = "settings-kind"

[[job]]
sweep = "settings"
datasets = ["lastfm-syn", "flixster-syn"]
"#;
        assert!(Scenario::parse(settings).is_ok());
    }

    #[test]
    fn mixed_csv_layouts_are_rejected() {
        // `datasets`/`settings` rows use fixed table layouts; mixing them
        // with sweep jobs (or each other) would produce a CSV whose rows
        // don't match its header.
        for extra in [
            "sweep = \"datasets\"",
            "sweep = \"settings\"\ndatasets = [\"lastfm-syn\"]",
        ] {
            let text = format!(
                r#"
schema = 1
name = "mixed"

[[job]]
sweep = "epsilon"
dataset = "flixster-syn"

[[job]]
{extra}
"#
            );
            let err = Scenario::parse(&text).unwrap_err();
            assert!(err.contains("incompatible CSV layouts"), "{err}");
        }
    }

    #[test]
    fn explicit_overrides_beat_the_quick_profile() {
        let s = Scenario::parse(MINI).unwrap();
        let base = ExperimentContext::smoke();
        let overrides = CtxOverrides {
            scale: Some(0.2),
            seed: Some(99),
            ..CtxOverrides::default()
        };
        let ctx = s.context_with_overrides(&base, true, &overrides);
        assert_eq!(ctx.scale, 0.2, "CLI --scale must beat the quick profile");
        assert_eq!(ctx.seed, 99);
        assert_eq!(ctx.eval_rr, 9000, "[quick] still applies elsewhere");
    }
}
