//! A minimal TOML-subset parser for scenario manifests.
//!
//! The workspace is offline (no real `toml` crate), so scenario manifests
//! are parsed by this small reader. Supported subset — everything the
//! `scenarios/*.toml` files use:
//!
//! * `key = value` pairs with basic strings (`"…"` with `\"`, `\\`, `\n`,
//!   `\t` escapes), integers, floats, booleans, and (possibly multi-line)
//!   arrays of those;
//! * `[table]` and dotted `[table.subtable]` headers;
//! * `[[array-of-tables]]` headers (one level, e.g. `[[job]]`);
//! * `#` comments and blank lines.
//!
//! Unsupported TOML (inline tables, dotted keys, dates, literal strings)
//! is rejected with a line-numbered error rather than misparsed.

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Toml {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Toml>),
    /// A table (`[header]` or the document root); insertion-ordered.
    Table(Vec<(String, Toml)>),
    /// An array of tables (`[[header]]`).
    TableArray(Vec<Toml>),
}

impl Toml {
    /// Look up `key` in a table.
    pub fn get(&self, key: &str) -> Option<&Toml> {
        match self {
            Toml::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Toml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float (accepting integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Toml::Int(i) => Some(*i as f64),
            Toml::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Toml::Int(i) if *i >= 0 => Some(*i as usize),
            _ => None,
        }
    }

    /// The value as an unsigned 64-bit integer (seeds).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Toml::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Toml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Toml]> {
        match self {
            Toml::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The tables of a `[[…]]` array-of-tables.
    pub fn as_tables(&self) -> Option<&[Toml]> {
        match self {
            Toml::TableArray(tables) => Some(tables),
            _ => None,
        }
    }

    /// Keys of a table, in file order.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Toml::Table(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parse a TOML document into its root [`Toml::Table`].
pub fn parse(input: &str) -> Result<Toml, String> {
    let mut root: Vec<(String, Toml)> = Vec::new();
    // Path of the table currently receiving `key = value` lines; empty for
    // the root. The final component may address the *last* element of an
    // array-of-tables.
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = input.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err("malformed [[header]]"))?
                .trim();
            if name.is_empty() || name.contains('.') {
                return Err(err("array-of-tables headers must be a single bare key"));
            }
            let slot = entry_mut(&mut root, name);
            match slot {
                Some(Toml::TableArray(tables)) => tables.push(Toml::Table(Vec::new())),
                Some(_) => return Err(err("key redefined as array-of-tables")),
                None => root.push((
                    name.to_string(),
                    Toml::TableArray(vec![Toml::Table(Vec::new())]),
                )),
            }
            current_path = vec![name.to_string()];
        } else if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| err("malformed [header]"))?
                .trim();
            if name.is_empty() {
                return Err(err("empty table header"));
            }
            current_path = name.split('.').map(|p| p.trim().to_string()).collect();
            ensure_table(&mut root, &current_path).map_err(|m| err(&m))?;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if key.is_empty() || key.contains('.') || key.starts_with('"') {
                return Err(err("unsupported key syntax"));
            }
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets balance
            // outside of strings.
            while !brackets_balanced(&value_text) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| err("unterminated multi-line array"))?;
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&value_text).map_err(|m| err(&m))?;
            let table = table_mut(&mut root, &current_path)
                .ok_or_else(|| err("internal error: missing table"))?;
            if table.iter().any(|(k, _)| k == key) {
                return Err(err(&format!("duplicate key {key:?}")));
            }
            table.push((key.to_string(), value));
        } else {
            return Err(err("expected `key = value` or a [header]"));
        }
    }
    Ok(Toml::Table(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

fn entry_mut<'a>(table: &'a mut [(String, Toml)], key: &str) -> Option<&'a mut Toml> {
    table.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Create (if needed) the nested table at `path` under `root`.
fn ensure_table(root: &mut Vec<(String, Toml)>, path: &[String]) -> Result<(), String> {
    let mut table = root;
    for part in path {
        if entry_mut(table, part).is_none() {
            table.push((part.clone(), Toml::Table(Vec::new())));
        }
        table = match entry_mut(table, part) {
            Some(Toml::Table(entries)) => entries,
            Some(Toml::TableArray(tables)) => match tables.last_mut() {
                Some(Toml::Table(entries)) => entries,
                _ => return Err(format!("corrupt array-of-tables {part:?}")),
            },
            _ => return Err(format!("key {part:?} is not a table")),
        };
    }
    Ok(())
}

/// The mutable entry list of the table at `path` (descending into the last
/// element of any array-of-tables on the way).
fn table_mut<'a>(
    root: &'a mut Vec<(String, Toml)>,
    path: &[String],
) -> Option<&'a mut Vec<(String, Toml)>> {
    let mut table = root;
    for part in path {
        table = match entry_mut(table, part)? {
            Toml::Table(entries) => entries,
            Toml::TableArray(tables) => match tables.last_mut()? {
                Toml::Table(entries) => entries,
                _ => return None,
            },
            _ => return None,
        };
    }
    Some(table)
}

fn parse_value(text: &str) -> Result<Toml, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty value".to_string());
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest).and_then(|(s, tail)| {
            if tail.trim().is_empty() {
                Ok(Toml::Str(s))
            } else {
                Err(format!("trailing characters after string: {tail:?}"))
            }
        });
    }
    if text == "true" {
        return Ok(Toml::Bool(true));
    }
    if text == "false" {
        return Ok(Toml::Bool(false));
    }
    if text.starts_with('[') {
        return parse_array(text);
    }
    if text.starts_with('{') {
        return Err("inline tables are not supported".to_string());
    }
    // TOML allows underscores in numbers.
    let plain: String = text.chars().filter(|&c| c != '_').collect();
    if plain.contains('.') || plain.contains('e') || plain.contains('E') {
        plain
            .parse::<f64>()
            .map(Toml::Float)
            .map_err(|e| format!("bad float {text:?}: {e}"))
    } else {
        plain
            .parse::<i64>()
            .map(Toml::Int)
            .map_err(|e| format!("bad value {text:?}: {e}"))
    }
}

/// Parse a string body (after the opening quote); returns the string and
/// the remaining text after the closing quote.
fn parse_string(rest: &str) -> Result<(String, &str), String> {
    let mut s = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((s, &rest[i + 1..])),
            '\\' => match chars.next().map(|(_, c)| c) {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some('r') => s.push('\r'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            c => s.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(text: &str) -> Result<Toml, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or("malformed array")?;
    let mut items = Vec::new();
    for part in split_top_level(inner)? {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_value(part)?);
    }
    Ok(Toml::Arr(items))
}

/// Split on commas that are not nested inside strings or brackets.
fn split_top_level(text: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if in_string || depth != 0 {
        return Err("malformed nested array".to_string());
    }
    parts.push(&text[start..]);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = parse(
            r#"
# a scenario
schema = 1
name = "fig1"      # inline comment
scale = 0.5
quick = true
alphas = [0.1, 0.2, 0.3]

[defaults]
num_ads = 10
seed = 20_210_620

[defaults.nested]
x = -2
"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_usize(), Some(1));
        assert_eq!(doc.get("name").unwrap().as_str(), Some("fig1"));
        assert_eq!(doc.get("scale").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("quick").unwrap().as_bool(), Some(true));
        let alphas: Vec<f64> = doc
            .get("alphas")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(alphas, vec![0.1, 0.2, 0.3]);
        let defaults = doc.get("defaults").unwrap();
        assert_eq!(defaults.get("num_ads").unwrap().as_usize(), Some(10));
        assert_eq!(defaults.get("seed").unwrap().as_u64(), Some(20_210_620));
        assert_eq!(
            defaults.get("nested").unwrap().get("x").unwrap().as_f64(),
            Some(-2.0)
        );
    }

    #[test]
    fn parses_array_of_tables_in_order() {
        let doc = parse(
            r#"
[[job]]
sweep = "alpha"
dataset = "flixster-syn"

[[job]]
sweep = "alpha"
dataset = "lastfm-syn"
values = [
    0.1,
    0.2, # with a comment
]
"#,
        )
        .unwrap();
        let jobs = doc.get("job").unwrap().as_tables().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0].get("dataset").unwrap().as_str(),
            Some("flixster-syn")
        );
        assert_eq!(jobs[1].get("values").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let doc = parse(r#"s = "a # not a comment \"x\" \n""#).unwrap();
        assert_eq!(
            doc.get("s").unwrap().as_str(),
            Some("a # not a comment \"x\" \n")
        );
    }

    #[test]
    fn nested_arrays_and_strings_with_structural_characters() {
        let doc = parse(
            r#"
grid = [[0.1, 0.2], [0.3], []]
tricky = ["a, b", "c ] d", "e [ f", "g # h"]
mixed = [1, "two", true, [3.5]]
"#,
        )
        .unwrap();
        let grid = doc.get("grid").unwrap().as_arr().unwrap();
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0].as_arr().unwrap().len(), 2);
        assert_eq!(grid[1].as_arr().unwrap()[0].as_f64(), Some(0.3));
        assert!(grid[2].as_arr().unwrap().is_empty());
        // Commas, brackets and hashes inside strings are content, not
        // structure.
        let tricky: Vec<&str> = doc
            .get("tricky")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(tricky, vec!["a, b", "c ] d", "e [ f", "g # h"]);
        let mixed = doc.get("mixed").unwrap().as_arr().unwrap();
        assert_eq!(mixed[0].as_usize(), Some(1));
        assert_eq!(mixed[1].as_str(), Some("two"));
        assert_eq!(mixed[2].as_bool(), Some(true));
        assert_eq!(mixed[3].as_arr().unwrap()[0].as_f64(), Some(3.5));
    }

    #[test]
    fn integer_vs_float_boundary() {
        let doc =
            parse("big = 9223372036854775807\nneg = -42\nexp = 1e3\nfrac = 0.5\nsep = 1_000_000\n")
                .unwrap();
        // i64::MAX survives; exponent forms are floats even when whole.
        assert_eq!(doc.get("big").unwrap().as_u64(), Some(i64::MAX as u64));
        assert_eq!(doc.get("big").unwrap().as_usize(), Some(i64::MAX as usize));
        assert_eq!(doc.get("exp").unwrap(), &Toml::Float(1000.0));
        assert_eq!(doc.get("sep").unwrap(), &Toml::Int(1_000_000));
        // Accessor cross-over: floats don't silently become counts, ints
        // widen to floats, negatives refuse unsigned accessors.
        assert_eq!(doc.get("exp").unwrap().as_usize(), None);
        assert_eq!(doc.get("frac").unwrap().as_usize(), None);
        assert_eq!(doc.get("neg").unwrap().as_f64(), Some(-42.0));
        assert_eq!(doc.get("neg").unwrap().as_usize(), None);
        assert_eq!(doc.get("neg").unwrap().as_u64(), None);
        // One past i64::MAX is a parse error, not wrap-around.
        assert!(parse("seed = 9223372036854775808").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "just words",
            "[unclosed",
            "k = ",
            "k = {a = 1}",
            "k = 1\nk = 2",
            "k = \"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
