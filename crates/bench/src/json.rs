//! A minimal JSON document model with a writer and a parser.
//!
//! The workspace vendors a no-op `serde` shim (see `vendor/README.md`), so
//! the bench reports cannot rely on `serde_json`. This module provides the
//! small, dependency-free subset the `rmsa` CLI needs: objects with *stable
//! key order* (golden-file friendly), arrays, strings, booleans, integers
//! and floats. Floats are written with Rust's shortest-roundtrip formatting,
//! so `parse(render(x)) == x` exactly.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A finite float. Non-finite values are rendered as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (accepting both `Int` and `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as a compact single-line JSON string.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty-printed JSON with two-space indentation and a
    /// trailing newline (the on-disk `BENCH_*.json` format).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Shortest-roundtrip form; force a decimal marker so the
                    // parser can distinguish floats from integers.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq<F: FnMut(&mut String, usize)>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: F,
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a human-readable error on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes: Vec<char> = input.chars().collect();
    let mut parser = Parser {
        chars: &bytes,
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(format!("trailing characters at offset {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos - 1))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            if !items.is_empty() {
                self.expect(',')?;
            }
            items.push(self.value()?);
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut entries = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Json::Obj(entries));
            }
            if !entries.is_empty() {
                self.expect(',')?;
                self.skip_ws();
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            entries.push((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let mut doc = Json::obj();
        doc.set("name", Json::Str("fig1".into()))
            .set("version", Json::Int(1))
            .set("quick", Json::Bool(true))
            .set(
                "points",
                Json::Arr(vec![Json::Num(0.1), Json::Num(1.0 / 3.0), Json::Null]),
            );
        for rendered in [doc.render_compact(), doc.render_pretty()] {
            let parsed = parse(&rendered).unwrap();
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1e-9, 123456.789, -0.25, 2.0] {
            let rendered = Json::Num(f).render_compact();
            assert_eq!(parse(&rendered).unwrap().as_f64(), Some(f));
        }
        // Whole-number floats keep a decimal marker so the type survives.
        assert_eq!(Json::Num(2.0).render_compact(), "2.0");
        assert_eq!(Json::Int(2).render_compact(), "2");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}";
        let rendered = Json::Str(s.into()).render_compact();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn integer_vs_float_boundary_is_preserved() {
        // i64 extremes stay integers.
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
        // One past i64::MAX is an error, not a silent truncation.
        assert!(parse("9223372036854775808").is_err());
        // Exponent forms are floats even when whole, and stay floats
        // through a render/parse cycle (the writer pins a decimal marker).
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::Num(1000.0).render_compact(), "1000.0");
        assert_eq!(parse("1000.0").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("1000").unwrap(), Json::Int(1000));
        // Accessor cross-over: whole floats read as ints, fractional don't.
        assert_eq!(Json::Num(2.0).as_i64(), Some(2));
        assert_eq!(Json::Num(2.5).as_i64(), None);
        assert_eq!(Json::Int(2).as_f64(), Some(2.0));
        // Negative zero round-trips as a float.
        let neg_zero = parse("-0.0").unwrap();
        assert_eq!(neg_zero.as_f64(), Some(-0.0));
        assert!(neg_zero.as_f64().unwrap().is_sign_negative());
    }

    #[test]
    fn escaped_strings_cover_the_wire_protocol() {
        // Every escape class the NDJSON wire can carry: quotes,
        // backslashes, control characters, \uXXXX, raw non-ASCII.
        for s in [
            "plain",
            "quote \" backslash \\ slash /",
            "newline\n tab\t return\r",
            "control \u{1} \u{1f}",
            "unicode é Ω 🦀",
            "\\\\double-escaped\\\"",
            "",
        ] {
            let rendered = Json::Str(s.into()).render_compact();
            assert!(!rendered.contains('\n'), "{rendered:?} must be one line");
            assert_eq!(parse(&rendered).unwrap().as_str(), Some(s));
        }
        // \uXXXX parses (the writer only emits it for control chars).
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert!(parse(r#""\u00g1""#).is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn nested_arrays_of_objects_roundtrip() {
        // The stats response shape: an object holding an array of objects,
        // each holding arrays and nested objects.
        let text = r#"{"sessions":[{"session":"a/standard","streams":[{"kind":"optimize","len":10},{"kind":"validate","len":10}]},{"session":"b/subsim","streams":[]}],"evictions":0}"#;
        let doc = parse(text).unwrap();
        let sessions = doc.get("sessions").unwrap().as_arr().unwrap();
        assert_eq!(sessions.len(), 2);
        let streams = sessions[0].get("streams").unwrap().as_arr().unwrap();
        assert_eq!(streams[1].get("kind").unwrap().as_str(), Some("validate"));
        assert!(sessions[1]
            .get("streams")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        // Compact rendering reproduces the input byte-for-byte (stable key
        // order), and pretty rendering parses back to the same document.
        assert_eq!(doc.render_compact(), text);
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn malformed_documents_error_out() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "12x", "\"unterminated", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = parse(r#"{"a": 1, "b": 2.5, "c": [true, null], "d": "x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("d").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
