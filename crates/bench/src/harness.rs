//! Experiment plumbing: contexts, workbench construction, algorithm
//! outcomes, CSV output.
//!
//! All experiments run through the [`Workbench`]: one workbench per
//! dataset/strategy owns the graph, the propagation model, and the shared
//! RR-set cache, so a sweep over α, ε, τ, ϱ, budgets, or demand extends one
//! set of RR-collections instead of regenerating them at every point.

use rmsa::prelude::*;
use rmsa_datasets::{Dataset, DatasetKind};
use std::io::Write;
use std::path::Path;

/// Experiment-wide knobs shared by every figure/table binary.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Global scale factor (`RMSA_SCALE`), applied to dataset sizes and
    /// budgets.
    pub scale: f64,
    /// Number of advertisers `h` (paper default 10 for TIC datasets).
    pub num_ads: usize,
    /// RR-sets per advertiser used to estimate singleton spreads for the
    /// incentive cost models.
    pub spread_rr: usize,
    /// RR-sets in the independent evaluation collection (the paper uses
    /// 10⁷; scaled instances need far fewer).
    pub eval_rr: usize,
    /// Worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Practical cap on RMA's RR-sets per collection.
    pub rma_max_rr: usize,
    /// Practical cap on the TI baselines' RR-sets per advertiser.
    pub ti_max_rr: usize,
    /// RMA accuracy ε (paper default 0.02; must satisfy ε < λ(h, τ)).
    pub rma_epsilon: f64,
    /// Baseline accuracy ε (paper default 0.1 on TIC datasets).
    pub ti_epsilon: f64,
}

impl ExperimentContext {
    /// Build a context from the environment (`RMSA_SCALE`, `RMSA_THREADS`,
    /// `RMSA_SEED`, `RMSA_EVAL_RR`).
    pub fn from_env() -> Self {
        let scale = std::env::var("RMSA_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let threads = rmsa_core::default_num_threads();
        let seed = std::env::var("RMSA_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(20_210_620);
        let eval_rr = std::env::var("RMSA_EVAL_RR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(400_000);
        ExperimentContext {
            scale,
            num_ads: 10,
            spread_rr: 20_000,
            eval_rr,
            threads,
            seed,
            rma_max_rr: 1_500_000,
            ti_max_rr: 400_000,
            rma_epsilon: 0.02,
            ti_epsilon: 0.1,
        }
    }

    /// A small context for smoke tests and CI.
    pub fn smoke() -> Self {
        ExperimentContext {
            scale: 0.05,
            num_ads: 3,
            spread_rr: 2_000,
            eval_rr: 20_000,
            threads: 1,
            seed: 7,
            rma_max_rr: 10_000,
            ti_max_rr: 3_000,
            rma_epsilon: 0.1,
            ti_epsilon: 0.3,
        }
    }

    /// Build one of the four datasets at this context's scale.
    pub fn dataset(&self, kind: DatasetKind) -> Dataset {
        Dataset::build(
            kind,
            self.num_ads,
            kind.default_scale() * self.scale,
            self.seed,
        )
    }

    /// Build a [`Workbench`] over a dataset (cloning its graph and model
    /// into the session) with the given RR-set generation strategy.
    pub fn workbench(&self, dataset: &Dataset, strategy: RrStrategy) -> Workbench {
        Workbench::builder()
            .graph(dataset.graph.clone())
            .model(dataset.model.clone())
            .strategy(strategy)
            .threads(self.threads)
            .seed(self.seed)
            .build()
            .expect("dataset provides graph and model")
    }
}

/// One algorithm's outcome on one configuration: the row format shared by
/// every figure and table.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlgoOutcome {
    /// Algorithm name (`RMA`, `TI-CARM`, `TI-CSRM`, …).
    pub algorithm: String,
    /// Total revenue measured on the independent evaluator.
    pub revenue: f64,
    /// Certified revenue lower bound where the solver provides one (RMA).
    pub revenue_lower_bound: Option<f64>,
    /// Total seed-incentive cost.
    pub seeding_cost: f64,
    /// Total number of selected seeds.
    pub seeds: usize,
    /// Wall-clock running time in seconds.
    pub time_secs: f64,
    /// RR-sets backing the algorithm's final answer.
    pub rr_sets: usize,
    /// RR-sets freshly generated for this run (below `rr_sets` when the
    /// shared cache served part of the request).
    pub rr_generated: usize,
    /// Wall-clock seconds spent building/extending the coverage index in
    /// this run (zero when the shared index was fully reused).
    pub index_secs: f64,
    /// RR-sets behind this run that were restored from a persisted
    /// snapshot instead of being generated in-process (0 without
    /// `--snapshot-dir` / `rmsa snapshot`).
    pub loaded_from_snapshot: usize,
    /// Wall-clock seconds the shared cache spent loading that snapshot.
    pub snapshot_load_secs: f64,
    /// Approximate memory footprint of the algorithm's sample structures,
    /// in bytes (exact `memory_bytes()` accounting): resident heap plus
    /// snapshot-mapped pages.
    pub memory_bytes: usize,
    /// Heap-owned portion of `memory_bytes`.
    pub resident_bytes: usize,
    /// Portion of `memory_bytes` borrowed zero-copy from a memory-mapped
    /// snapshot (0 for cold-built caches and owned snapshot loads).
    pub mapped_bytes: usize,
    /// The same footprint in MiB (the historical CSV column).
    pub memory_mib: f64,
    /// Budget usage percentage (Fig. 6).
    pub budget_usage_pct: f64,
    /// Rate of return percentage (Fig. 6).
    pub rate_of_return_pct: f64,
    /// Per-phase latency breakdown, seconds at this row's quantile
    /// (loadgen latency rows only: queue / batch_wait / warm_check /
    /// solve / serialize / flush, plus send_lag in open loop). Empty —
    /// and absent from the report JSON — everywhere else.
    pub phases: Vec<(String, f64)>,
}

impl AlgoOutcome {
    /// Convert a [`SolveReport`] into the experiment row format, measuring
    /// revenue on the independent evaluator.
    pub fn from_report(
        report: &SolveReport,
        instance: &RmInstance,
        evaluator: &IndependentEvaluator,
    ) -> Self {
        let eval = evaluator.report(instance, &report.allocation);
        AlgoOutcome {
            algorithm: report.solver.clone(),
            revenue: eval.revenue,
            revenue_lower_bound: report.revenue_lower_bound,
            seeding_cost: eval.seeding_cost,
            seeds: eval.total_seeds,
            time_secs: report.elapsed.as_secs_f64(),
            rr_sets: report.rr.used,
            rr_generated: report.rr.generated,
            index_secs: report.index_time.as_secs_f64(),
            loaded_from_snapshot: report.loaded_from_snapshot,
            snapshot_load_secs: report.snapshot_load_time.as_secs_f64(),
            memory_bytes: report.memory_bytes,
            resident_bytes: report.memory_bytes.saturating_sub(report.mapped_bytes),
            mapped_bytes: report.mapped_bytes,
            memory_mib: report.memory_bytes as f64 / (1024.0 * 1024.0),
            budget_usage_pct: eval.budget_usage_pct,
            rate_of_return_pct: eval.rate_of_return_pct,
            phases: Vec::new(),
        }
    }
}

/// Default RMA configuration used by the experiments (Sec. 5.1 parameters:
/// ε = 0.02, ϱ = 0.1, τ = 0.1; δ is a fixed small value).
pub fn default_rma_config(ctx: &ExperimentContext) -> RmaConfig {
    RmaConfig {
        epsilon: ctx.rma_epsilon,
        delta: 0.001,
        tau: 0.1,
        rho: 0.1,
        strategy: RrStrategy::Standard,
        num_threads: ctx.threads,
        max_rr_per_collection: ctx.rma_max_rr,
        seed: ctx.seed,
    }
}

/// Default TI-CARM / TI-CSRM configuration (the paper sets their ε to 0.1 on
/// the TIC datasets and 0.3 on the scalability datasets because smaller
/// values exhaust memory).
pub fn default_ti_config(ctx: &ExperimentContext) -> TiConfig {
    TiConfig {
        epsilon: ctx.ti_epsilon,
        delta: 0.001,
        strategy: RrStrategy::Standard,
        pilot_sets: 2_048,
        max_rr_per_ad: ctx.ti_max_rr,
        seed: ctx.seed ^ 0xBA5E,
    }
}

/// Run RMA on a workbench and convert to an [`AlgoOutcome`].
pub fn run_rma(
    wb: &Workbench,
    instance: &RmInstance,
    evaluator: &IndependentEvaluator,
    config: &RmaConfig,
) -> (AlgoOutcome, SolveReport) {
    let report = wb
        .run_solver(&Rma::new(config.clone()), instance)
        .expect("RMA configuration is valid");
    (
        AlgoOutcome::from_report(&report, instance, evaluator),
        report,
    )
}

/// Run one of the TI baselines. Per the paper's protocol the baselines
/// receive budgets `(1 + ϱ)` times RMA's; pass that factor as
/// `budget_scale`.
pub fn run_ti(
    wb: &Workbench,
    instance: &RmInstance,
    evaluator: &IndependentEvaluator,
    config: &TiConfig,
    cost_sensitive: bool,
    budget_scale: f64,
) -> (AlgoOutcome, SolveReport) {
    let solver: Box<dyn Solver> = if cost_sensitive {
        Box::new(TiCsrm::with_budget_scale(config.clone(), budget_scale))
    } else {
        Box::new(TiCarm::with_budget_scale(config.clone(), budget_scale))
    };
    let report = wb
        .run_solver(solver.as_ref(), instance)
        .expect("TI configuration is valid");
    (
        AlgoOutcome::from_report(&report, instance, evaluator),
        report,
    )
}

/// Write CSV rows under `results/<name>.csv` (the directory is created if
/// missing). Returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(path)
}

/// The standard "who wins" comparison on one instance — RMA against both TI
/// baselines with the paper's budget convention, all through one workbench.
pub fn compare_algorithms(
    ctx: &ExperimentContext,
    wb: &Workbench,
    instance: &RmInstance,
    rma_config: &RmaConfig,
    ti_config: &TiConfig,
) -> Vec<AlgoOutcome> {
    let evaluator = wb.evaluator(instance, ctx.eval_rr);
    let budget_scale = 1.0 + rma_config.rho;
    let (rma, _) = run_rma(wb, instance, &evaluator, rma_config);
    let (carm, _) = run_ti(wb, instance, &evaluator, ti_config, false, budget_scale);
    let (csrm, _) = run_ti(wb, instance, &evaluator, ti_config, true, budget_scale);
    vec![rma, carm, csrm]
}

/// Build the incentive-model instance used across the Fig. 1–3 / Table 3
/// sweeps, reusing precomputed singleton spreads.
pub fn instance_for_alpha(
    dataset: &Dataset,
    advertisers: &[Advertiser],
    spreads: &[Vec<f64>],
    incentive: IncentiveModel,
    alpha: f64,
) -> RmInstance {
    dataset.build_instance_from_spreads(advertisers.to_vec(), spreads, incentive, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_context_runs_a_full_comparison() {
        let ctx = ExperimentContext::smoke();
        let dataset = ctx.dataset(DatasetKind::LastfmSyn);
        let advertisers: Vec<Advertiser> = (0..ctx.num_ads)
            .map(|_| Advertiser::try_new(30.0, 1.0).unwrap())
            .collect();
        let instance = dataset.build_instance(
            advertisers,
            IncentiveModel::Linear,
            0.1,
            ctx.spread_rr,
            ctx.seed,
        );
        let wb = ctx.workbench(&dataset, RrStrategy::Standard);
        let mut rma_cfg = default_rma_config(&ctx);
        rma_cfg.epsilon = 0.1; // < λ(3, 0.1) ≈ 0.1136
        rma_cfg.max_rr_per_collection = 20_000;
        let mut ti_cfg = default_ti_config(&ctx);
        ti_cfg.epsilon = 0.3;
        ti_cfg.max_rr_per_ad = 5_000;
        let outcomes = compare_algorithms(&ctx, &wb, &instance, &rma_cfg, &ti_cfg);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].algorithm, "RMA");
        assert_eq!(outcomes[1].algorithm, "TI-CARM");
        assert_eq!(outcomes[2].algorithm, "TI-CSRM");
        for o in &outcomes {
            assert!(o.time_secs >= 0.0);
            assert!(o.rr_sets > 0);
        }
    }

    #[test]
    fn csv_writer_creates_the_results_file() {
        let path = write_csv(
            "unit_test_output",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn env_context_has_sane_defaults() {
        let ctx = ExperimentContext::from_env();
        assert!(ctx.scale > 0.0);
        assert!(ctx.num_ads >= 1);
        assert!(ctx.eval_rr > 0);
        // The default ε must be admissible for the default h under τ = 0.1.
        assert!(default_rma_config(&ctx).validate(ctx.num_ads).is_ok());
    }
}
