//! Parameter sweeps shared by the figure/table binaries.
//!
//! Every sweep builds one [`Workbench`] per dataset/strategy and runs all
//! of its points through it, so the RR-set collections (optimisation,
//! validation, and evaluation) are extended across points instead of
//! regenerated — sweeping α, ε, τ, ϱ, budgets, or demand leaves the
//! advertiser CPE line-up unchanged, which is all the shared cache needs.

use crate::harness::{
    compare_algorithms, default_rma_config, default_ti_config, instance_for_alpha, run_rma,
    AlgoOutcome, ExperimentContext,
};
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64Mcg;
use rmsa::prelude::*;
use rmsa_datasets::config::{table2_advertisers, FLIXSTER_PROFILE, LASTFM_PROFILE};
use rmsa_datasets::DatasetKind;

/// The α values of Figs. 1–3 and Table 3.
pub const ALPHAS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// Table 2 advertisers for a TIC dataset, with budgets scaled by the
/// experiment context's global scale.
pub fn advertisers_for(ctx: &ExperimentContext, kind: DatasetKind, seed: u64) -> Vec<Advertiser> {
    let profile = match kind {
        DatasetKind::LastfmSyn => &LASTFM_PROFILE,
        _ => &FLIXSTER_PROFILE,
    };
    let mut rng = Pcg64Mcg::seed_from_u64(seed);
    let mut ads = table2_advertisers(profile, ctx.num_ads, &mut rng);
    for a in &mut ads {
        a.budget = (a.budget * ctx.scale).max(10.0);
    }
    ads
}

/// One row of a sweep: the swept value and the algorithms' outcomes.
pub type SweepRow = (f64, Vec<AlgoOutcome>);

/// The α sweep behind Figs. 1–3 and Table 3: a TIC dataset, one incentive
/// model, α ∈ [`ALPHAS`], comparing RMA / TI-CARM / TI-CSRM. One workbench
/// serves all five α points.
pub fn alpha_sweep(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    incentive: IncentiveModel,
    strategy: RrStrategy,
) -> Vec<SweepRow> {
    alpha_sweep_values(ctx, kind, incentive, strategy, &ALPHAS)
}

/// [`alpha_sweep`] over an explicit α grid (manifest-driven scenarios can
/// override the paper's five points).
pub fn alpha_sweep_values(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    incentive: IncentiveModel,
    strategy: RrStrategy,
    alphas: &[f64],
) -> Vec<SweepRow> {
    let dataset = ctx.dataset(kind);
    let wb = ctx.workbench(&dataset, strategy);
    let advertisers = advertisers_for(ctx, kind, ctx.seed ^ 0xAD5);
    let spreads = dataset.singleton_spreads(ctx.spread_rr, ctx.seed ^ 0x5EED);
    let rma_cfg = default_rma_config(ctx);
    let mut ti_cfg = default_ti_config(ctx);
    ti_cfg.strategy = strategy;
    alphas
        .iter()
        .map(|&alpha| {
            let instance = instance_for_alpha(&dataset, &advertisers, &spreads, incentive, alpha);
            let outcomes = compare_algorithms(ctx, &wb, &instance, &rma_cfg, &ti_cfg);
            (alpha, outcomes)
        })
        .collect()
}

/// Fig. 4: the accuracy sweep. RMA's ε is swept over fractions of its
/// admissible range (0, λ(h, τ)); the baselines' ε is swept over the
/// paper's 0.05–0.3 band at matching fractions. Revenue and the memory
/// proxy (RR-set footprint) are reported.
///
/// Points run from the loosest ε (smallest sample requirement) to the
/// tightest, so the shared collections *extend* point over point and each
/// point's memory/`rr_sets` figure still reflects its own ε — preserving
/// the paper's memory-vs-ε trend under the cache. Per-point generation
/// cost is in `rr_generated`.
pub fn epsilon_sweep(ctx: &ExperimentContext, kind: DatasetKind) -> Vec<SweepRow> {
    let dataset = ctx.dataset(kind);
    let wb = ctx.workbench(&dataset, RrStrategy::Standard);
    let advertisers = advertisers_for(ctx, kind, ctx.seed ^ 0xAD5);
    let spreads = dataset.singleton_spreads(ctx.spread_rr, ctx.seed ^ 0x5EED);
    let instance = instance_for_alpha(
        &dataset,
        &advertisers,
        &spreads,
        IncentiveModel::Linear,
        0.1,
    );
    let lam = rmsa_core::lambda(ctx.num_ads, 0.1);
    [0.95, 0.8, 0.65, 0.5, 0.35, 0.2]
        .iter()
        .map(|&frac| {
            let mut rma_cfg = default_rma_config(ctx);
            rma_cfg.epsilon = frac * lam;
            let mut ti_cfg = default_ti_config(ctx);
            ti_cfg.epsilon = 0.05 + frac * 0.25;
            let outcomes = compare_algorithms(ctx, &wb, &instance, &rma_cfg, &ti_cfg);
            (rma_cfg.epsilon, outcomes)
        })
        .collect()
}

/// Fig. 5 sweeps: either the number of advertisers `h` (with a fixed budget
/// per advertiser) or the per-advertiser budget (with fixed `h = 5`) on a
/// Weighted-Cascade scalability dataset.
pub enum ScalabilitySweep {
    /// Vary the number of advertisers.
    Advertisers {
        /// Budget shared by every advertiser.
        budget: f64,
        /// The `h` values to sweep.
        values: Vec<usize>,
    },
    /// Vary the per-advertiser budget.
    Budgets {
        /// Fixed number of advertisers.
        num_ads: usize,
        /// The budget values to sweep.
        values: Vec<f64>,
    },
}

/// Run a Fig. 5 scalability sweep; the `f64` key of each row is `h` or the
/// budget, depending on the sweep. Budget sweeps share one workbench;
/// advertiser sweeps rebuild the model (and thus the workbench) per `h`.
pub fn scalability_sweep(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    sweep: ScalabilitySweep,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    let configs: Vec<(usize, f64)> = match &sweep {
        ScalabilitySweep::Advertisers { budget, values } => {
            values.iter().map(|&h| (h, *budget)).collect()
        }
        ScalabilitySweep::Budgets { num_ads, values } => {
            values.iter().map(|&b| (*num_ads, b)).collect()
        }
    };
    // Budget sweeps keep `h` fixed, so one dataset + workbench serves every
    // point; advertiser sweeps change the model arity per point.
    let mut current: Option<(usize, rmsa_datasets::Dataset, Workbench)> = None;
    for (h, budget) in configs {
        let mut sub_ctx = ctx.clone();
        sub_ctx.num_ads = h;
        if current.as_ref().map(|(ch, _, _)| *ch) != Some(h) {
            let dataset = sub_ctx.dataset(kind);
            let wb = sub_ctx.workbench(&dataset, RrStrategy::Subsim);
            current = Some((h, dataset, wb));
        }
        let (_, dataset, wb) = current.as_ref().expect("workbench just built");
        let budget = (budget * ctx.scale).max(10.0);
        let advertisers = rmsa_datasets::scalability_advertisers(h, budget);
        // The scalability experiments use the linear incentive model with
        // α = 0.2 (Sec. 5.2.3); WC spreads are shared across advertisers.
        let instance = dataset.build_instance(
            advertisers,
            IncentiveModel::Linear,
            0.2,
            sub_ctx.spread_rr,
            sub_ctx.seed ^ 0x5EED,
        );
        let mut rma_cfg = default_rma_config(&sub_ctx);
        // ε must stay inside (0, λ(h, τ)), which shrinks as h grows.
        rma_cfg.epsilon = rma_cfg.epsilon.min(0.9 * rmsa_core::lambda(h, rma_cfg.tau));
        let mut ti_cfg = default_ti_config(&sub_ctx);
        ti_cfg.epsilon = 0.3;
        ti_cfg.strategy = RrStrategy::Subsim;
        let outcomes = compare_algorithms(&sub_ctx, wb, &instance, &rma_cfg, &ti_cfg);
        let key = match &sweep {
            ScalabilitySweep::Advertisers { .. } => h as f64,
            ScalabilitySweep::Budgets { .. } => budget,
        };
        rows.push((key, outcomes));
    }
    rows
}

/// The generator families swept by the fig5-style scalability scenario.
pub const GENERATOR_FAMILIES: [&str; 5] = [
    "barabasi_albert",
    "erdos_renyi",
    "power_law_configuration",
    "watts_strogatz",
    "celebrity_graph",
];

/// Build a ~`n`-node graph of one generator family, deterministic in
/// `seed`. The random families share a mean degree of ~8 so the sweep's
/// points are comparable across families; `celebrity_graph` (the one
/// deterministic family) rounds `n` up to whole hub blocks.
pub fn family_graph(
    family: &str,
    n: usize,
    seed: u64,
) -> Result<rmsa_graph::DirectedGraph, String> {
    use rmsa_graph::generators as g;
    let mut rng = Pcg64Mcg::seed_from_u64(seed);
    Ok(match family {
        "barabasi_albert" => g::barabasi_albert(n, 8, &mut rng),
        "erdos_renyi" => g::erdos_renyi(n, (8.0 / n.max(2) as f64).min(1.0), &mut rng),
        "power_law_configuration" => {
            g::power_law_configuration(n, 2.3, 8.0, (n / 10).max(8), &mut rng)
        }
        "watts_strogatz" => g::watts_strogatz(n, 8, 0.1, &mut rng),
        "celebrity_graph" => g::celebrity_graph(n.div_ceil(100).max(1), 99),
        other => {
            return Err(format!(
                "unknown generator family {other:?} (expected one of {GENERATOR_FAMILIES:?})"
            ))
        }
    })
}

/// Decode a genscale snapshot back from either source (owned bytes or a
/// zero-copy mapping).
fn genscale_decode<S: rmsa_store::SectionSource>(
    src: &S,
) -> Result<
    (
        rmsa_graph::DirectedGraph,
        rmsa_diffusion::RrArena,
        rmsa_diffusion::CoverageIndex,
    ),
    rmsa_store::StoreError,
> {
    use rmsa_store::section;
    let graph = rmsa_graph::snapshot::read_graph(&mut src.require(section::GRAPH)?)?;
    let arena =
        rmsa_diffusion::snapshot::read_arena(&mut src.require(section::CACHE_STREAM_BASE)?)?;
    let index = rmsa_diffusion::snapshot::read_index(
        &mut src.require(section::CACHE_STREAM_BASE + 1)?,
        &arena,
    )?;
    Ok((graph, arena, index))
}

/// The tentpole scalability sweep: for each target node count, build one
/// generator-family graph, generate a sharded RR batch over it, persist a
/// v2 snapshot, and race the owned decode against the zero-copy mmap load.
///
/// Each point emits three rows keyed by the (scaled) node count:
///
/// * `generate` — sharded generation + coverage indexing wall-clock;
///   `revenue` carries the total RR entry count, which is bit-identical
///   for any shard/thread count, so the compare gate catches a
///   distribution regression.
/// * `load-owned` — full eager decode of the snapshot (every column
///   copied to the heap, per-element validation on).
/// * `load-mapped` — lazy zero-copy load (`mapped_bytes` > 0 on eligible
///   targets; validation deferred to the checksum layer).
///
/// Node counts scale with `ctx.scale`, so the quick CI profile runs
/// miniatures of the very sweep the full profile drives past 10^6 nodes.
pub fn genscale_sweep(
    ctx: &ExperimentContext,
    family: &str,
    nodes: &[usize],
    rr_per_node: f64,
    num_shards: usize,
) -> Result<Vec<SweepRow>, String> {
    use rmsa_diffusion::{CoverageIndex, MappedSnapshot, RrArena, UniformRrSampler, VerifyMode};
    use rmsa_store::{section, SnapshotReader, SnapshotWriter};
    use std::time::Instant;
    let mut rows = Vec::new();
    for &target in nodes {
        let n = ((target as f64 * ctx.scale).round() as usize).max(64);
        let graph = family_graph(family, n, ctx.seed ^ target as u64)?;
        let model = rmsa_diffusion::WeightedCascade::new(&graph, ctx.num_ads);
        let cpes = vec![1.0; ctx.num_ads];
        let sampler = UniformRrSampler::new(&cpes);
        let count = ((n as f64 * rr_per_node).round() as usize).max(1);

        let gen_start = Instant::now();
        let mut arena = RrArena::new(graph.num_nodes(), RrStrategy::Subsim);
        let spans = arena.generate_sharded(
            &graph,
            &model,
            &sampler,
            count,
            num_shards,
            ctx.threads,
            ctx.seed ^ 0x6E5C,
        );
        let gen_secs = gen_start.elapsed().as_secs_f64();
        let index_start = Instant::now();
        let mut index = CoverageIndex::new(graph.num_nodes(), ctx.num_ads);
        index.extend_by_spans(&arena, &spans);
        let index_secs = index_start.elapsed().as_secs_f64();
        let entries = arena.total_entries();

        // Persist the point as an aligned v2 snapshot, then race the two
        // load paths against the same file.
        let mut w = SnapshotWriter::new();
        rmsa_graph::snapshot::write_graph(&graph, w.section(section::GRAPH));
        rmsa_diffusion::snapshot::write_arena(&arena, w.section(section::CACHE_STREAM_BASE));
        rmsa_diffusion::snapshot::write_index(&index, w.section(section::CACHE_STREAM_BASE + 1));
        let bytes = w.finish();
        let path = std::env::temp_dir().join(format!(
            "rmsa_genscale_{family}_{n}_{:x}.rmsnap",
            ctx.seed ^ std::process::id() as u64
        ));
        rmsa_store::write_file(&path, &bytes)
            .map_err(|e| format!("genscale: write {}: {e}", path.display()))?;

        let owned_start = Instant::now();
        let file_bytes = rmsa_store::read_file(&path)
            .map_err(|e| format!("genscale: reread {}: {e}", path.display()))?;
        let reader = SnapshotReader::parse(&file_bytes)
            .map_err(|e| format!("genscale: parse {}: {e}", path.display()))?;
        let (_, arena_o, index_o) = genscale_decode(&reader)
            .map_err(|e| format!("genscale: owned decode {}: {e}", path.display()))?;
        let owned_secs = owned_start.elapsed().as_secs_f64();

        let mapped_start = Instant::now();
        let snap = MappedSnapshot::open(&path, VerifyMode::Lazy)
            .map_err(|e| format!("genscale: mmap {}: {e}", path.display()))?;
        let (_, arena_m, index_m) = genscale_decode(&snap)
            .map_err(|e| format!("genscale: mapped decode {}: {e}", path.display()))?;
        let mapped_secs = mapped_start.elapsed().as_secs_f64();
        std::fs::remove_file(&path).ok();

        // Cheap identity spine (the exhaustive mapped ≡ owned equivalence
        // lives in the diffusion test suite).
        if arena_o.len() != arena_m.len()
            || arena_o.total_entries() != arena_m.total_entries()
            || arena_o.len() != count
        {
            return Err(format!(
                "genscale: load paths disagree for {family} at n = {n}: owned {}x{}, mapped {}x{}",
                arena_o.len(),
                arena_o.total_entries(),
                arena_m.len(),
                arena_m.total_entries()
            ));
        }

        let outcome = |algorithm: &str,
                       time_secs: f64,
                       rr_generated: usize,
                       idx_secs: f64,
                       loaded: usize,
                       load_secs: f64,
                       resident: usize,
                       mapped: usize| AlgoOutcome {
            algorithm: algorithm.to_string(),
            revenue: entries as f64,
            revenue_lower_bound: None,
            seeding_cost: 0.0,
            seeds: 0,
            time_secs,
            rr_sets: count,
            rr_generated,
            index_secs: idx_secs,
            loaded_from_snapshot: loaded,
            snapshot_load_secs: load_secs,
            memory_bytes: resident + mapped,
            resident_bytes: resident,
            mapped_bytes: mapped,
            memory_mib: (resident + mapped) as f64 / (1024.0 * 1024.0),
            budget_usage_pct: 0.0,
            rate_of_return_pct: 0.0,
            phases: Vec::new(),
        };
        let key = n as f64;
        rows.push((
            key,
            vec![
                outcome(
                    "generate",
                    gen_secs,
                    count,
                    index_secs,
                    0,
                    0.0,
                    arena.resident_bytes() + index.resident_bytes(),
                    arena.mapped_bytes() + index.mapped_bytes(),
                ),
                outcome(
                    "load-owned",
                    owned_secs,
                    0,
                    0.0,
                    arena_o.len(),
                    owned_secs,
                    arena_o.resident_bytes() + index_o.resident_bytes(),
                    arena_o.mapped_bytes() + index_o.mapped_bytes(),
                ),
                outcome(
                    "load-mapped",
                    mapped_secs,
                    0,
                    0.0,
                    arena_m.len(),
                    mapped_secs,
                    arena_m.resident_bytes() + index_m.resident_bytes(),
                    arena_m.mapped_bytes() + index_m.mapped_bytes(),
                ),
            ],
        ));
    }
    Ok(rows)
}

/// Fig. 7: the holistic-demand sweep. Total demand `M = Σ_i B_i / (n·cpe_i)`
/// is split randomly across advertisers with `cpe = 1`. One workbench
/// serves every demand point (budgets change, CPEs do not).
pub fn demand_sweep(ctx: &ExperimentContext, kind: DatasetKind, demands: &[f64]) -> Vec<SweepRow> {
    let dataset = ctx.dataset(kind);
    let wb = ctx.workbench(&dataset, RrStrategy::Standard);
    let n = dataset.graph.num_nodes() as f64;
    let spreads = dataset.singleton_spreads(ctx.spread_rr, ctx.seed ^ 0x5EED);
    let mut rng = Pcg64Mcg::seed_from_u64(ctx.seed ^ 0xDE3A);
    demands
        .iter()
        .map(|&m_total| {
            // Random positive shares summing to the total demand.
            let raw: Vec<f64> = (0..ctx.num_ads).map(|_| rng.gen_range(0.5..1.5)).collect();
            let sum: f64 = raw.iter().sum();
            let advertisers: Vec<Advertiser> = raw
                .iter()
                .map(|r| {
                    let share = r / sum * m_total;
                    Advertiser::try_new((share * n).max(10.0), 1.0).unwrap()
                })
                .collect();
            let instance = dataset.build_instance_from_spreads(
                advertisers,
                &spreads,
                IncentiveModel::Linear,
                0.1,
            );
            let outcomes = compare_algorithms(
                ctx,
                &wb,
                &instance,
                &default_rma_config(ctx),
                &default_ti_config(ctx),
            );
            (m_total, outcomes)
        })
        .collect()
}

/// Which RMA parameter [`rma_parameter_sweep`] varies.
#[derive(Clone, Copy, Debug)]
pub enum RmaParameter {
    /// The binary-search accuracy τ (Fig. 8 / Table 5).
    Tau,
    /// The budget-overshoot ϱ (Fig. 9).
    Rho,
}

/// Fig. 8 / Table 5 (τ sweep) and Fig. 9 (ϱ sweep): RMA-only parameter
/// sensitivity on a fixed linear-cost instance, all through one workbench.
pub fn rma_parameter_sweep(
    ctx: &ExperimentContext,
    kind: DatasetKind,
    parameter: RmaParameter,
    values: &[f64],
) -> Vec<(f64, AlgoOutcome)> {
    let dataset = ctx.dataset(kind);
    let wb = ctx.workbench(&dataset, RrStrategy::Standard);
    let advertisers = advertisers_for(ctx, kind, ctx.seed ^ 0xAD5);
    let spreads = dataset.singleton_spreads(ctx.spread_rr, ctx.seed ^ 0x5EED);
    let instance = instance_for_alpha(
        &dataset,
        &advertisers,
        &spreads,
        IncentiveModel::Linear,
        0.1,
    );
    let evaluator = wb.evaluator(&instance, ctx.eval_rr);
    values
        .iter()
        .map(|&v| {
            let mut cfg = default_rma_config(ctx);
            match parameter {
                RmaParameter::Tau => {
                    cfg.tau = v.clamp(0.001, 0.999);
                    // ε must stay inside (0, λ(h, τ)) as τ grows.
                    cfg.epsilon = cfg
                        .epsilon
                        .min(0.9 * rmsa_core::lambda(ctx.num_ads, cfg.tau));
                }
                RmaParameter::Rho => cfg.rho = v.min(0.999),
            }
            let (outcome, _) = run_rma(&wb, &instance, &evaluator, &cfg);
            (v, outcome)
        })
        .collect()
}

/// Turn sweep rows into CSV lines, each prefixed with `row_prefix` (which
/// may carry extra configuration columns such as the dataset and incentive
/// model; it must end with a comma when non-empty).
pub fn sweep_csv_lines(row_prefix: &str, rows: &[SweepRow]) -> Vec<String> {
    let mut lines = Vec::new();
    for (key, outcomes) in rows {
        for o in outcomes {
            lines.push(format!(
                "{row_prefix}{key},{},{:.3},{:.3},{},{:.3},{},{},{:.4},{},{:.3},{},{},{:.2},{:.2}",
                o.algorithm,
                o.revenue,
                o.seeding_cost,
                o.seeds,
                o.time_secs,
                o.rr_sets,
                o.rr_generated,
                o.index_secs,
                o.loaded_from_snapshot,
                o.memory_mib,
                o.resident_bytes,
                o.mapped_bytes,
                o.budget_usage_pct,
                o.rate_of_return_pct
            ));
        }
    }
    lines
}

/// The CSV column list appended after any configuration columns and the
/// sweep key.
pub const SWEEP_CSV_COLUMNS: &str = "algorithm,revenue,seeding_cost,seeds,time_secs,rr_sets,\
rr_generated,index_secs,loaded_from_snapshot,memory_mib,resident_bytes,mapped_bytes,\
budget_usage_pct,rate_of_return_pct";

/// The deterministic projection of a standard sweep CSV row: every column
/// except the wall-clock ones (`time_secs`, `index_secs`), which differ
/// between otherwise-identical executions. Column positions are derived
/// from [`SWEEP_CSV_COLUMNS`] (counted from the row's end, so any number
/// of leading configuration columns is tolerated). Used by tests and
/// tooling that compare rows across runs.
pub fn deterministic_csv_fields(row: &str) -> Vec<String> {
    let metrics: Vec<&str> = SWEEP_CSV_COLUMNS.split(',').collect();
    let from_end = |name: &str| {
        metrics.len()
            - metrics
                .iter()
                .position(|m| *m == name)
                .expect("metric is in SWEEP_CSV_COLUMNS")
    };
    let fields: Vec<&str> = row.split(',').collect();
    let skip = [
        fields.len() - from_end("time_secs"),
        fields.len() - from_end("index_secs"),
    ];
    fields
        .iter()
        .enumerate()
        .filter(|(i, _)| !skip.contains(i))
        .map(|(_, f)| f.to_string())
        .collect()
}

/// Print one metric of a sweep as the table the paper's figure plots.
pub fn print_sweep_metric<F: Fn(&AlgoOutcome) -> String>(
    title: &str,
    key_label: &str,
    rows: &[SweepRow],
    metric: F,
) {
    print!("{}", sweep_metric_table(title, key_label, rows, metric));
}

/// Render one metric of a sweep as the table the paper's figure plots; the
/// algorithm columns are taken from the first row's outcomes.
pub fn sweep_metric_table<F: Fn(&AlgoOutcome) -> String>(
    title: &str,
    key_label: &str,
    rows: &[SweepRow],
    metric: F,
) -> String {
    use std::fmt::Write;
    let algorithms: Vec<String> = rows
        .first()
        .map(|(_, outcomes)| outcomes.iter().map(|o| o.algorithm.clone()).collect())
        .unwrap_or_default();
    let mut out = format!("\n{title}\n");
    let _ = write!(out, "{key_label:<12}");
    for name in &algorithms {
        let _ = write!(out, " {name:>14}");
    }
    out.push('\n');
    for (key, outcomes) in rows {
        let _ = write!(out, "{key:<12.4}");
        for name in &algorithms {
            let cell = outcomes
                .iter()
                .find(|o| &o.algorithm == name)
                .map(&metric)
                .unwrap_or_else(|| "-".to_string());
            let _ = write!(out, " {cell:>14}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_sweep_produces_one_row_per_alpha() {
        let mut ctx = ExperimentContext::smoke();
        ctx.eval_rr = 5_000;
        ctx.spread_rr = 1_000;
        let rows = alpha_sweep(
            &ctx,
            DatasetKind::LastfmSyn,
            IncentiveModel::Linear,
            RrStrategy::Standard,
        );
        assert_eq!(rows.len(), ALPHAS.len());
        for (alpha, outcomes) in &rows {
            assert!(ALPHAS.contains(alpha));
            assert_eq!(outcomes.len(), 3);
        }
        // Later α points reuse earlier points' RR-sets: the total fresh
        // generation must undercut what five independent runs would pay.
        let total_used: usize = rows
            .iter()
            .flat_map(|(_, outcomes)| outcomes.iter())
            .map(|o| o.rr_sets)
            .sum();
        let total_generated: usize = rows
            .iter()
            .flat_map(|(_, outcomes)| outcomes.iter())
            .map(|o| o.rr_generated)
            .sum();
        assert!(
            total_generated < total_used,
            "sweep reuse expected: generated {total_generated} of {total_used} used"
        );
    }

    #[test]
    fn scalability_sweep_varies_the_requested_dimension() {
        let mut ctx = ExperimentContext::smoke();
        ctx.eval_rr = 5_000;
        ctx.spread_rr = 500;
        let rows = scalability_sweep(
            &ctx,
            DatasetKind::DblpSyn,
            ScalabilitySweep::Advertisers {
                budget: 100.0,
                values: vec![1, 3],
            },
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 1.0);
        assert_eq!(rows[1].0, 3.0);
    }

    #[test]
    fn rma_parameter_sweep_reports_one_outcome_per_value() {
        let mut ctx = ExperimentContext::smoke();
        ctx.eval_rr = 5_000;
        ctx.spread_rr = 500;
        let rows =
            rma_parameter_sweep(&ctx, DatasetKind::LastfmSyn, RmaParameter::Tau, &[0.1, 0.3]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.algorithm, "RMA");
    }
}
