//! Figure 6: budget usage and rate of return vs budget.
//!
//! Thin wrapper over the manifest `scenarios/fig6.toml`; equivalent to
//! `rmsa sweep scenarios/fig6.toml`.

fn main() {
    rmsa_bench::scenario_main("fig6");
}
