//! Figure 6: budget usage and rate of return on the LiveJournal stand-in
//! while sweeping the per-advertiser budget (the derived metrics behind the
//! Fig. 5(h) discussion).
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig6_budget_usage`.

use rmsa_bench::sweeps::{
    print_sweep_metric, scalability_sweep, sweep_csv_lines, ScalabilitySweep, SWEEP_CSV_COLUMNS,
};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    let rows = scalability_sweep(
        &ctx,
        DatasetKind::LiveJournalSyn,
        ScalabilitySweep::Budgets {
            num_ads: 5,
            values: vec![
                50_000.0, 100_000.0, 150_000.0, 200_000.0, 250_000.0, 300_000.0,
            ],
        },
    );
    print_sweep_metric(
        "Fig.6(a) — budget usage (%) vs budget, livejournal-syn",
        "budget",
        &rows,
        |o| format!("{:.1}", o.budget_usage_pct),
    );
    print_sweep_metric(
        "Fig.6(b) — rate of return (%) vs budget, livejournal-syn",
        "budget",
        &rows,
        |o| format!("{:.1}", o.rate_of_return_pct),
    );
    let lines = sweep_csv_lines("livejournal-syn,budgets,", &rows);
    let path = write_csv(
        "fig6_budget_usage",
        &format!("dataset,sweep,key,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
