//! Table 2: advertiser budgets and CPE values drawn for the TIC datasets.
//!
//! Run with `cargo run --release -p rmsa-bench --bin table2_settings`.

use rmsa_bench::sweeps::advertisers_for;
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    println!(
        "Table 2 — advertiser budgets and CPEs (h = {}, scale {})\n",
        ctx.num_ads, ctx.scale
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "dataset", "budget mean", "budget max", "budget min", "cpe mean", "cpe max", "cpe min"
    );
    let mut rows = Vec::new();
    for kind in [DatasetKind::LastfmSyn, DatasetKind::FlixsterSyn] {
        let ads = advertisers_for(&ctx, kind, ctx.seed ^ 0xAD5);
        let budgets: Vec<f64> = ads.iter().map(|a| a.budget).collect();
        let cpes: Vec<f64> = ads.iter().map(|a| a.cpe).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
        let min = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2} {:>8.2}",
            kind.name(),
            mean(&budgets),
            max(&budgets),
            min(&budgets),
            mean(&cpes),
            max(&cpes),
            min(&cpes)
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.3},{:.3},{:.3}",
            kind.name(),
            mean(&budgets),
            max(&budgets),
            min(&budgets),
            mean(&cpes),
            max(&cpes),
            min(&cpes)
        ));
    }
    let path = write_csv(
        "table2_settings",
        "dataset,budget_mean,budget_max,budget_min,cpe_mean,cpe_max,cpe_min",
        &rows,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
