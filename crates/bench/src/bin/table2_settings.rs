//! Table 2: advertiser budgets and CPE values for the TIC datasets.
//!
//! Thin wrapper over the manifest `scenarios/table2.toml`; equivalent to
//! `rmsa sweep scenarios/table2.toml`.

fn main() {
    rmsa_bench::scenario_main("table2");
}
