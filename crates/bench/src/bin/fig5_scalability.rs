//! Figure 5: scalability on the Weighted-Cascade datasets — running time and
//! total revenue while (a–d) scaling the number of advertisers and (e–h)
//! scaling the per-advertiser budget.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig5_scalability`.
//! `RMSA_SCALE` shrinks both the graphs and the budgets.

use rmsa_bench::sweeps::{
    print_sweep_metric, scalability_sweep, sweep_csv_lines, ScalabilitySweep, SWEEP_CSV_COLUMNS,
};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::DblpSyn, DatasetKind::LiveJournalSyn] {
        // Fig. 5(a–d): h ∈ {1, 5, 10, 15, 20}, budget 10K (DBLP) / 100K (LJ).
        let budget = if kind == DatasetKind::DblpSyn {
            10_000.0
        } else {
            100_000.0
        };
        let rows_h = scalability_sweep(
            &ctx,
            kind,
            ScalabilitySweep::Advertisers {
                budget,
                values: vec![1, 5, 10, 15, 20],
            },
        );
        print_sweep_metric(
            &format!("Fig.5 — running time (s) vs h, {}", kind.name()),
            "h",
            &rows_h,
            |o| format!("{:.2}", o.time_secs),
        );
        print_sweep_metric(
            &format!("Fig.5 — total revenue vs h, {}", kind.name()),
            "h",
            &rows_h,
            |o| format!("{:.1}", o.revenue),
        );
        lines.extend(sweep_csv_lines(
            &format!("{},advertisers,", kind.name()),
            &rows_h,
        ));

        // Fig. 5(e–h): budgets swept with h = 5.
        let budgets: Vec<f64> = if kind == DatasetKind::DblpSyn {
            vec![5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0]
        } else {
            vec![
                50_000.0, 100_000.0, 150_000.0, 200_000.0, 250_000.0, 300_000.0,
            ]
        };
        let rows_b = scalability_sweep(
            &ctx,
            kind,
            ScalabilitySweep::Budgets {
                num_ads: 5,
                values: budgets,
            },
        );
        print_sweep_metric(
            &format!("Fig.5 — running time (s) vs budget, {}", kind.name()),
            "budget",
            &rows_b,
            |o| format!("{:.2}", o.time_secs),
        );
        print_sweep_metric(
            &format!("Fig.5 — total revenue vs budget, {}", kind.name()),
            "budget",
            &rows_b,
            |o| format!("{:.1}", o.revenue),
        );
        lines.extend(sweep_csv_lines(
            &format!("{},budgets,", kind.name()),
            &rows_b,
        ));
    }
    let path = write_csv(
        "fig5_scalability",
        &format!("dataset,sweep,key,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
