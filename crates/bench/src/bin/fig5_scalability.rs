//! Figure 5: scalability in the advertiser count and the budgets.
//!
//! Thin wrapper over the manifest `scenarios/fig5.toml`; equivalent to
//! `rmsa sweep scenarios/fig5.toml`.

fn main() {
    rmsa_bench::scenario_main("fig5");
}
