//! Figure 1: total revenue as a function of α on the two TIC datasets under
//! the linear / quasi-linear / super-linear incentive models, comparing RMA
//! with TI-CARM and TI-CSRM.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig1_revenue_vs_alpha`.
//! Use `RMSA_SCALE=0.1` for a quick laptop run.

use rmsa_bench::sweeps::{alpha_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        for incentive in IncentiveModel::all() {
            let rows = alpha_sweep(&ctx, kind, incentive, RrStrategy::Standard);
            print_sweep_metric(
                &format!(
                    "Fig.1 — total revenue, {} / {}",
                    kind.name(),
                    incentive.label()
                ),
                "alpha",
                &rows,
                |o| format!("{:.1}", o.revenue),
            );
            lines.extend(sweep_csv_lines(
                &format!("{},{},", kind.name(), incentive.label()),
                &rows,
            ));
        }
    }
    let path = write_csv(
        "fig1_revenue_vs_alpha",
        &format!("dataset,incentive,alpha,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
