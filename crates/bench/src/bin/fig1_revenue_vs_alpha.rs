//! Figure 1: total revenue vs α (RMA vs TI-CARM / TI-CSRM).
//!
//! Thin wrapper over the manifest `scenarios/fig1.toml`; equivalent to
//! `rmsa sweep scenarios/fig1.toml`.

fn main() {
    rmsa_bench::scenario_main("fig1");
}
