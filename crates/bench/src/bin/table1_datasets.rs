//! Table 1: dataset statistics of the four synthetic stand-ins.
//!
//! Thin wrapper over the manifest `scenarios/table1.toml`; equivalent to
//! `rmsa sweep scenarios/table1.toml`.

fn main() {
    rmsa_bench::scenario_main("table1");
}
