//! Table 1: dataset statistics of the four synthetic stand-ins.
//!
//! Run with `cargo run --release -p rmsa-bench --bin table1_datasets`
//! (set `RMSA_SCALE` to shrink every dataset proportionally).

use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    println!(
        "Table 1 — datasets (scale {} on top of per-dataset defaults)\n",
        ctx.scale
    );
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "dataset", "|V|", "|E|", "max indeg", "mean deg", "model"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = ctx.dataset(kind);
        let s = dataset.stats();
        let model = if kind.uses_tic() { "TIC" } else { "WC" };
        println!(
            "{:<18} {:>10} {:>12} {:>10} {:>12.2} {:>8}",
            kind.name(),
            s.num_nodes,
            s.num_edges,
            s.max_in_degree,
            s.mean_degree,
            model
        );
        rows.push(format!(
            "{},{},{},{},{:.3},{}",
            kind.name(),
            s.num_nodes,
            s.num_edges,
            s.max_in_degree,
            s.mean_degree,
            model
        ));
    }
    let path = write_csv(
        "table1_datasets",
        "dataset,nodes,edges,max_in_degree,mean_degree,model",
        &rows,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
