//! Figure 10 / Table 6: the SUBSIM-accelerated variant — revenue, seeding
//! cost and running time under the linear cost model when all algorithms use
//! geometric-skip RR-set generation instead of per-edge coin flips.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig10_subsim`.

use rmsa_bench::sweeps::{alpha_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        let rows = alpha_sweep(&ctx, kind, IncentiveModel::Linear, RrStrategy::Subsim);
        print_sweep_metric(
            &format!("Fig.10 — total revenue (SUBSIM), {} / linear", kind.name()),
            "alpha",
            &rows,
            |o| format!("{:.1}", o.revenue),
        );
        print_sweep_metric(
            &format!(
                "Fig.10 — total seeding cost (SUBSIM), {} / linear",
                kind.name()
            ),
            "alpha",
            &rows,
            |o| format!("{:.1}", o.seeding_cost),
        );
        print_sweep_metric(
            &format!(
                "Table 6 — running time (s) with SUBSIM, {} / linear",
                kind.name()
            ),
            "alpha",
            &rows,
            |o| format!("{:.2}", o.time_secs),
        );
        lines.extend(sweep_csv_lines(&format!("{},subsim,", kind.name()), &rows));
    }
    let path = write_csv(
        "fig10_subsim",
        &format!("dataset,strategy,alpha,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
