//! Figure 10 / Table 6: the SUBSIM-accelerated variant.
//!
//! Thin wrapper over the manifest `scenarios/fig10.toml`; equivalent to
//! `rmsa sweep scenarios/fig10.toml`.

fn main() {
    rmsa_bench::scenario_main("fig10");
}
