//! Figure 8 / Table 5: impact of the binary-search accuracy τ on RMA's
//! revenue and running time (linear cost model, α = 0.1).
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig8_tau_impact`.

use rmsa_bench::sweeps::rma_parameter_sweep;
use rmsa_bench::sweeps::RmaParameter;
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    let taus = [0.05, 0.10, 0.15, 0.25, 0.35, 0.45];
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        let rows = rma_parameter_sweep(&ctx, kind, RmaParameter::Tau, &taus);
        println!("\nFig.8 / Table 5 — impact of τ on RMA, {}", kind.name());
        println!(
            "{:<8} {:>14} {:>14} {:>10}",
            "tau", "revenue", "time (s)", "RR-sets"
        );
        for (tau, o) in &rows {
            println!(
                "{:<8.2} {:>14.1} {:>14.2} {:>10}",
                tau, o.revenue, o.time_secs, o.rr_sets
            );
            lines.push(format!(
                "{},{:.2},{:.3},{:.3},{},{}",
                kind.name(),
                tau,
                o.revenue,
                o.time_secs,
                o.seeds,
                o.rr_sets
            ));
        }
    }
    let path = write_csv(
        "fig8_tau_impact",
        "dataset,tau,revenue,time_secs,seeds,rr_sets",
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
