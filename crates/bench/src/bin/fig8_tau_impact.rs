//! Figure 8 / Table 5: impact of the binary-search accuracy τ on RMA.
//!
//! Thin wrapper over the manifest `scenarios/fig8.toml`; equivalent to
//! `rmsa sweep scenarios/fig8.toml`.

fn main() {
    rmsa_bench::scenario_main("fig8");
}
