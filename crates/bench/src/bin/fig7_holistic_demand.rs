//! Figure 7: the holistic-demand scenario — total revenue and seeding cost
//! (a, b) as the total market demand M varies, and (c, d) as α varies at a
//! fixed demand, on the Flixster stand-in.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig7_holistic_demand`.

use rmsa_bench::sweeps::{
    alpha_sweep, demand_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS,
};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();

    // Fig. 7(a)-(b): total demand M ∈ [2.0, 2.5], α = 0.1, cpe = 1.
    let demands = [2.0, 2.1, 2.2, 2.3, 2.4, 2.5];
    let rows_m = demand_sweep(&ctx, DatasetKind::FlixsterSyn, &demands);
    print_sweep_metric(
        "Fig.7(a) — total revenue vs total demand M, flixster-syn",
        "M",
        &rows_m,
        |o| format!("{:.1}", o.revenue),
    );
    print_sweep_metric(
        "Fig.7(b) — total seeding cost vs total demand M, flixster-syn",
        "M",
        &rows_m,
        |o| format!("{:.1}", o.seeding_cost),
    );
    lines.extend(sweep_csv_lines("flixster-syn,demand,", &rows_m));

    // Fig. 7(c)-(d): α sweep at fixed demand (Table-2 style budgets already
    // encode a fixed total demand; the α dependence is what the panel shows).
    let rows_a = alpha_sweep(
        &ctx,
        DatasetKind::FlixsterSyn,
        IncentiveModel::Linear,
        RrStrategy::Standard,
    );
    print_sweep_metric(
        "Fig.7(c) — total revenue vs alpha, flixster-syn",
        "alpha",
        &rows_a,
        |o| format!("{:.1}", o.revenue),
    );
    print_sweep_metric(
        "Fig.7(d) — total seeding cost vs alpha, flixster-syn",
        "alpha",
        &rows_a,
        |o| format!("{:.1}", o.seeding_cost),
    );
    lines.extend(sweep_csv_lines("flixster-syn,alpha,", &rows_a));

    let path = write_csv(
        "fig7_holistic_demand",
        &format!("dataset,sweep,key,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
