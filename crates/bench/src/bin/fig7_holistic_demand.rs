//! Figure 7: the holistic-demand scenario.
//!
//! Thin wrapper over the manifest `scenarios/fig7.toml`; equivalent to
//! `rmsa sweep scenarios/fig7.toml`.

fn main() {
    rmsa_bench::scenario_main("fig7");
}
