//! Figure 2: total seeding cost vs α.
//!
//! Thin wrapper over the manifest `scenarios/fig2.toml`; equivalent to
//! `rmsa sweep scenarios/fig2.toml`.

fn main() {
    rmsa_bench::scenario_main("fig2");
}
