//! Figure 9: impact of the budget-overshoot parameter ϱ on RMA's revenue
//! (linear cost model, α = 0.1). Larger ϱ means RMA internally optimises
//! against a smaller effective budget, so revenue decreases.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig9_rho_impact`.

use rmsa_bench::sweeps::{rma_parameter_sweep, RmaParameter};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    let rhos = [0.10, 0.45, 0.80, 0.95];
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        let rows = rma_parameter_sweep(&ctx, kind, RmaParameter::Rho, &rhos);
        println!("\nFig.9 — impact of ϱ on RMA, {}", kind.name());
        println!(
            "{:<8} {:>14} {:>14} {:>10}",
            "rho", "revenue", "seed cost", "seeds"
        );
        for (rho, o) in &rows {
            println!(
                "{:<8.2} {:>14.1} {:>14.1} {:>10}",
                rho, o.revenue, o.seeding_cost, o.seeds
            );
            lines.push(format!(
                "{},{:.2},{:.3},{:.3},{}",
                kind.name(),
                rho,
                o.revenue,
                o.seeding_cost,
                o.seeds
            ));
        }
    }
    let path = write_csv(
        "fig9_rho_impact",
        "dataset,rho,revenue,seeding_cost,seeds",
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
