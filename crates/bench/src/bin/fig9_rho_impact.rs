//! Figure 9: impact of the budget-overshoot parameter ϱ on RMA.
//!
//! Thin wrapper over the manifest `scenarios/fig9.toml`; equivalent to
//! `rmsa sweep scenarios/fig9.toml`.

fn main() {
    rmsa_bench::scenario_main("fig9");
}
