//! Figure 4: impact of ε on revenue and on memory consumption (RR-set
//! footprint proxy) for RMA, TI-CARM and TI-CSRM under the linear cost
//! model with α = 0.1.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig4_epsilon_impact`.

use rmsa_bench::sweeps::{epsilon_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::DatasetKind;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        let rows = epsilon_sweep(&ctx, kind);
        print_sweep_metric(
            &format!("Fig.4 — total revenue vs ε, {}", kind.name()),
            "epsilon",
            &rows,
            |o| format!("{:.1}", o.revenue),
        );
        print_sweep_metric(
            &format!("Fig.4 — RR-set memory (MiB) vs ε, {}", kind.name()),
            "epsilon",
            &rows,
            |o| format!("{:.2}", o.memory_mib),
        );
        lines.extend(sweep_csv_lines(&format!("{},", kind.name()), &rows));
    }
    let path = write_csv(
        "fig4_epsilon_impact",
        &format!("dataset,epsilon,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
