//! Figure 4: impact of ε on revenue and memory consumption.
//!
//! Thin wrapper over the manifest `scenarios/fig4.toml`; equivalent to
//! `rmsa sweep scenarios/fig4.toml`.

fn main() {
    rmsa_bench::scenario_main("fig4");
}
