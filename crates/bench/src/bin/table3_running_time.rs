//! Table 3: running time under the linear cost model as α varies.
//!
//! Thin wrapper over the manifest `scenarios/table3.toml`; equivalent to
//! `rmsa sweep scenarios/table3.toml`.

fn main() {
    rmsa_bench::scenario_main("table3");
}
