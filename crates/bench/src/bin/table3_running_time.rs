//! Table 3: running time (seconds) under the linear cost model as α varies,
//! for RMA, TI-CARM and TI-CSRM on both TIC datasets.
//!
//! Run with `cargo run --release -p rmsa-bench --bin table3_running_time`.

use rmsa_bench::sweeps::{alpha_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        let rows = alpha_sweep(&ctx, kind, IncentiveModel::Linear, RrStrategy::Standard);
        print_sweep_metric(
            &format!("Table 3 — running time (s), {} / linear", kind.name()),
            "alpha",
            &rows,
            |o| format!("{:.2}", o.time_secs),
        );
        lines.extend(sweep_csv_lines(&format!("{},linear,", kind.name()), &rows));
    }
    let path = write_csv(
        "table3_running_time",
        &format!("dataset,incentive,alpha,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
