//! Figure 3: total number of selected seeds vs α.
//!
//! Thin wrapper over the manifest `scenarios/fig3.toml`; equivalent to
//! `rmsa sweep scenarios/fig3.toml`.

fn main() {
    rmsa_bench::scenario_main("fig3");
}
