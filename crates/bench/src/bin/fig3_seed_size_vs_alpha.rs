//! Figure 3: total number of selected seeds as a function of α under the
//! linear incentive model.
//!
//! Run with `cargo run --release -p rmsa-bench --bin fig3_seed_size_vs_alpha`.

use rmsa_bench::sweeps::{alpha_sweep, print_sweep_metric, sweep_csv_lines, SWEEP_CSV_COLUMNS};
use rmsa_bench::{write_csv, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut lines = Vec::new();
    for kind in [DatasetKind::LastfmSyn, DatasetKind::FlixsterSyn] {
        let rows = alpha_sweep(&ctx, kind, IncentiveModel::Linear, RrStrategy::Standard);
        print_sweep_metric(
            &format!("Fig.3 — total seed size, {} / linear", kind.name()),
            "alpha",
            &rows,
            |o| o.seeds.to_string(),
        );
        lines.extend(sweep_csv_lines(&format!("{},linear,", kind.name()), &rows));
    }
    let path = write_csv(
        "fig3_seed_size_vs_alpha",
        &format!("dataset,incentive,alpha,{SWEEP_CSV_COLUMNS}"),
        &lines,
    )
    .expect("write results CSV");
    println!("\nwrote {}", path.display());
}
