//! The shared scenario runner behind the `rmsa` CLI and the thin
//! figure/table binaries.
//!
//! A scenario's `[[job]]`s are independent *workbench groups*: every job
//! owns one `Workbench` (graph + model + RR-set cache) and runs its sweep
//! points sequentially through it, so collections extend deterministically
//! and the cache-reuse accounting matches the paper's protocol. Distinct
//! jobs share nothing, so the runner executes them in parallel with
//! [`std::thread::scope`]; every seed is derived from the manifest/context
//! master seed, which makes the output bit-identical for any `--jobs`
//! value (and to the historical sequential binaries).

use crate::harness::ExperimentContext;
use crate::manifest::{metric_value, Scenario, ScenarioJob, SweepSpec};
use crate::report::{BenchPoint, BenchReport, RunManifest};
use crate::sweeps::{
    advertisers_for, alpha_sweep_values, demand_sweep, epsilon_sweep, genscale_sweep,
    rma_parameter_sweep, scalability_sweep, sweep_metric_table, SweepRow, ALPHAS,
    SWEEP_CSV_COLUMNS,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutput {
    /// CSV header line.
    pub csv_header: String,
    /// CSV data rows, in job order.
    pub csv_rows: Vec<String>,
    /// The machine-readable bench report.
    pub report: BenchReport,
    /// Human-readable tables, in job order.
    pub console: String,
}

/// Result of one job.
struct JobResult {
    csv_lines: Vec<String>,
    points: Vec<BenchPoint>,
    console: String,
}

/// Execute a scenario. `quick` applies the manifest's quick profile;
/// `parallel_jobs` caps the number of concurrently running jobs (any value
/// produces identical output).
pub fn run_scenario(
    scenario: &Scenario,
    base_ctx: &ExperimentContext,
    quick: bool,
    parallel_jobs: usize,
) -> Result<ScenarioOutput, String> {
    run_scenario_with_overrides(
        scenario,
        base_ctx,
        quick,
        &crate::manifest::CtxOverrides::default(),
        parallel_jobs,
    )
}

/// [`run_scenario`] with a final layer of explicit context overrides (CLI
/// flags) that win over the manifest's `[defaults]`/`[quick]` sections.
pub fn run_scenario_with_overrides(
    scenario: &Scenario,
    base_ctx: &ExperimentContext,
    quick: bool,
    overrides: &crate::manifest::CtxOverrides,
    parallel_jobs: usize,
) -> Result<ScenarioOutput, String> {
    let ctx = scenario.context_with_overrides(base_ctx, quick, overrides);
    let started = Instant::now();
    let results = run_jobs(&ctx, scenario, parallel_jobs.max(1))?;
    let total_wall_secs = started.elapsed().as_secs_f64();

    let mut csv_rows = Vec::new();
    let mut points = Vec::new();
    let mut console = String::new();
    for result in results {
        csv_rows.extend(result.csv_lines);
        points.extend(result.points);
        console.push_str(&result.console);
    }
    let report = BenchReport {
        scenario: scenario.name.clone(),
        title: scenario.title.clone(),
        points,
        total_wall_secs,
        run: RunManifest::collect(ctx.seed, ctx.threads, ctx.scale, quick),
    };
    Ok(ScenarioOutput {
        csv_header: csv_header(scenario),
        csv_rows,
        report,
        console,
    })
}

/// The CSV header of a scenario: the fixed layouts of the table scenarios,
/// or `key_columns` followed by the standard per-algorithm columns.
fn csv_header(scenario: &Scenario) -> String {
    match scenario.jobs.first().map(|j| &j.sweep) {
        Some(SweepSpec::Datasets) => {
            "dataset,nodes,edges,max_in_degree,mean_degree,model".to_string()
        }
        Some(SweepSpec::Settings { .. }) => {
            "dataset,budget_mean,budget_max,budget_min,cpe_mean,cpe_max,cpe_min".to_string()
        }
        _ => format!("{},{SWEEP_CSV_COLUMNS}", scenario.key_columns),
    }
}

fn run_jobs(
    ctx: &ExperimentContext,
    scenario: &Scenario,
    parallel_jobs: usize,
) -> Result<Vec<JobResult>, String> {
    let jobs = &scenario.jobs;
    let workers = parallel_jobs.min(jobs.len()).max(1);
    if workers == 1 {
        return jobs.iter().map(|j| run_job(ctx, scenario, j)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<JobResult, String>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run_job(ctx, scenario, &jobs[i]);
                slots.lock().expect("runner mutex poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("runner mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed"))
        .collect()
}

fn run_job(
    ctx: &ExperimentContext,
    scenario: &Scenario,
    job: &ScenarioJob,
) -> Result<JobResult, String> {
    Ok(match &job.sweep {
        SweepSpec::Alpha {
            dataset,
            incentive,
            strategy,
            values,
        } => {
            let alphas: &[f64] = values.as_deref().unwrap_or(&ALPHAS);
            let rows = alpha_sweep_values(ctx, *dataset, *incentive, *strategy, alphas);
            sweep_result(scenario, job, rows)
        }
        SweepSpec::Epsilon { dataset } => {
            let rows = epsilon_sweep(ctx, *dataset);
            sweep_result(scenario, job, rows)
        }
        SweepSpec::Scalability { dataset, sweep } => {
            let rows = scalability_sweep(ctx, *dataset, sweep.to_sweep());
            sweep_result(scenario, job, rows)
        }
        SweepSpec::GenScale {
            family,
            nodes,
            rr_per_node,
            shards,
        } => {
            let rows = genscale_sweep(ctx, family, nodes, *rr_per_node, *shards)?;
            sweep_result(scenario, job, rows)
        }
        SweepSpec::Demand { dataset, values } => {
            let rows = demand_sweep(ctx, *dataset, values);
            sweep_result(scenario, job, rows)
        }
        SweepSpec::Rma {
            dataset,
            parameter,
            values,
        } => {
            let rows: Vec<SweepRow> =
                rma_parameter_sweep(ctx, *dataset, parameter.to_parameter(), values)
                    .into_iter()
                    .map(|(key, outcome)| (key, vec![outcome]))
                    .collect();
            sweep_result(scenario, job, rows)
        }
        SweepSpec::Datasets => datasets_result(ctx),
        SweepSpec::Settings { datasets } => settings_result(ctx, datasets),
    })
}

/// CSV lines, bench points and console tables of a standard sweep job.
fn sweep_result(scenario: &Scenario, job: &ScenarioJob, rows: Vec<SweepRow>) -> JobResult {
    let csv_lines = crate::sweeps::sweep_csv_lines(&job.prefix, &rows);
    let points = rows
        .iter()
        .flat_map(|(key, outcomes)| {
            outcomes.iter().map(|o| BenchPoint {
                job: job.prefix.clone(),
                key: *key,
                outcome: o.clone(),
            })
        })
        .collect();
    let mut console = String::new();
    let title_base = job
        .title
        .clone()
        .unwrap_or_else(|| format!("{} — {}", scenario.title, job.prefix.trim_end_matches(',')));
    for metric in &job.metrics {
        console.push_str(&sweep_metric_table(
            &format!("{title_base} [{metric}]"),
            scenario.key_label(),
            &rows,
            |o| metric_value(o, metric),
        ));
    }
    JobResult {
        csv_lines,
        points,
        console,
    }
}

/// Table 1: dataset statistics (no solver runs, no bench points).
fn datasets_result(ctx: &ExperimentContext) -> JobResult {
    use rmsa_datasets::DatasetKind;
    let mut console = format!(
        "Table 1 — datasets (scale {} on top of per-dataset defaults)\n\n",
        ctx.scale
    );
    let _ = writeln!(
        console,
        "{:<18} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "dataset", "|V|", "|E|", "max indeg", "mean deg", "model"
    );
    let mut csv_lines = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = ctx.dataset(kind);
        let s = dataset.stats();
        let model = if kind.uses_tic() { "TIC" } else { "WC" };
        let _ = writeln!(
            console,
            "{:<18} {:>10} {:>12} {:>10} {:>12.2} {:>8}",
            kind.name(),
            s.num_nodes,
            s.num_edges,
            s.max_in_degree,
            s.mean_degree,
            model
        );
        csv_lines.push(format!(
            "{},{},{},{},{:.3},{}",
            kind.name(),
            s.num_nodes,
            s.num_edges,
            s.max_in_degree,
            s.mean_degree,
            model
        ));
    }
    JobResult {
        csv_lines,
        points: Vec::new(),
        console,
    }
}

/// Table 2: advertiser budget/CPE settings (no solver runs).
fn settings_result(ctx: &ExperimentContext, datasets: &[rmsa_datasets::DatasetKind]) -> JobResult {
    let mut console = format!(
        "Table 2 — advertiser budgets and CPEs (h = {}, scale {})\n\n",
        ctx.num_ads, ctx.scale
    );
    let _ = writeln!(
        console,
        "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "dataset", "budget mean", "budget max", "budget min", "cpe mean", "cpe max", "cpe min"
    );
    let mut csv_lines = Vec::new();
    for &kind in datasets {
        let ads = advertisers_for(ctx, kind, ctx.seed ^ 0xAD5);
        let budgets: Vec<f64> = ads.iter().map(|a| a.budget).collect();
        let cpes: Vec<f64> = ads.iter().map(|a| a.cpe).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
        let min = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
        let _ = writeln!(
            console,
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2} {:>8.2}",
            kind.name(),
            mean(&budgets),
            max(&budgets),
            min(&budgets),
            mean(&cpes),
            max(&cpes),
            min(&cpes)
        );
        csv_lines.push(format!(
            "{},{:.2},{:.2},{:.2},{:.3},{:.3},{:.3}",
            kind.name(),
            mean(&budgets),
            max(&budgets),
            min(&budgets),
            mean(&cpes),
            max(&cpes),
            min(&cpes)
        ));
    }
    JobResult {
        csv_lines,
        points: Vec::new(),
        console,
    }
}

/// Write the CSV (`results/<scenario>.csv`) and bench report
/// (`<json_dir>/BENCH_<scenario>.json`, default CWD). Returns both paths.
pub fn write_outputs(
    scenario: &Scenario,
    output: &ScenarioOutput,
    json_dir: Option<&Path>,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let csv_path = crate::harness::write_csv(&scenario.name, &output.csv_header, &output.csv_rows)?;
    let json_path = json_dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!("BENCH_{}.json", scenario.name));
    if let Some(parent) = json_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&json_path, output.report.render())?;
    Ok((csv_path, json_path))
}

/// Locate `scenarios/<stem>.toml` from the current directory or relative to
/// the workspace root (so `cargo run -p rmsa-bench --bin fig1_…` works from
/// anywhere inside the repository).
pub fn find_scenario(stem: &str) -> Option<PathBuf> {
    let file = format!("{stem}.toml");
    let candidates = [
        PathBuf::from("scenarios").join(&file),
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios")
            .join(&file),
    ];
    candidates.into_iter().find(|p| p.is_file())
}

/// Whether a boolean environment flag is enabled: set to anything other
/// than the empty string, `0`, `false`, or `off`. (`RMSA_BENCH_QUICK=0`
/// must mean *off*, not quick mode.)
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "false" | "off"
        ),
        Err(_) => false,
    }
}

/// Default job-level parallelism: `RMSA_JOBS` when set, otherwise the
/// available cores divided by the per-job RR-generation threads.
pub fn default_parallel_jobs(ctx: &ExperimentContext) -> usize {
    if let Some(jobs) = std::env::var("RMSA_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return jobs.max(1);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / ctx.threads.max(1)).max(1)
}

/// Entry point of the thin figure/table binaries: run
/// `scenarios/<stem>.toml` with environment-driven settings and write the
/// CSV + `BENCH_*.json` outputs. `RMSA_BENCH_QUICK=1` selects the quick
/// profile.
pub fn scenario_main(stem: &str) {
    let path = find_scenario(stem)
        .unwrap_or_else(|| panic!("scenario manifest scenarios/{stem}.toml not found"));
    let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{e}"));
    let ctx = ExperimentContext::from_env();
    let quick = env_flag("RMSA_BENCH_QUICK");
    let jobs = default_parallel_jobs(&ctx);
    let output = run_scenario(&scenario, &ctx, quick, jobs).unwrap_or_else(|e| panic!("{e}"));
    print!("{}", output.console);
    let (csv_path, json_path) =
        write_outputs(&scenario, &output, None).expect("write scenario outputs");
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Scenario;

    fn tiny_scenario() -> Scenario {
        Scenario::parse(
            r#"
schema = 1
name = "tiny"
title = "tiny scenario"
key_columns = "dataset,incentive,alpha"

[[job]]
sweep = "alpha"
dataset = "lastfm-syn"
incentive = "linear"
strategy = "standard"
prefix = "lastfm-syn,linear,"
values = [0.1, 0.3]
metrics = ["revenue"]

[[job]]
sweep = "alpha"
dataset = "lastfm-syn"
incentive = "superlinear"
strategy = "standard"
prefix = "lastfm-syn,superlinear,"
values = [0.1]
"#,
        )
        .unwrap()
    }

    fn tiny_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::smoke();
        ctx.eval_rr = 5_000;
        ctx.spread_rr = 1_000;
        ctx
    }

    use crate::sweeps::deterministic_csv_fields as deterministic_row;

    #[test]
    fn runner_output_is_independent_of_job_parallelism() {
        let scenario = tiny_scenario();
        let ctx = tiny_ctx();
        let seq = run_scenario(&scenario, &ctx, false, 1).unwrap();
        let par = run_scenario(&scenario, &ctx, false, 4).unwrap();
        assert_eq!(seq.csv_header, par.csv_header);
        let deterministic = |out: &ScenarioOutput| {
            out.csv_rows
                .iter()
                .map(|r| deterministic_row(r))
                .collect::<Vec<_>>()
        };
        assert_eq!(deterministic(&seq), deterministic(&par));
        assert!(!seq.console.is_empty());
        assert_eq!(
            seq.report.points.len(),
            3 * 3,
            "3 sweep points x 3 algorithms"
        );
        assert!(seq.report.peak_memory_bytes() > 0);
    }

    #[test]
    fn runner_reproduces_the_direct_sweep_rows() {
        // The manifest path must produce exactly the rows the historical
        // binaries got from calling the sweep functions directly (modulo
        // the wall-clock columns).
        let scenario = tiny_scenario();
        let ctx = tiny_ctx();
        let output = run_scenario(&scenario, &ctx, false, 2).unwrap();
        let mut direct = Vec::new();
        for (incentive, values) in [
            (rmsa_datasets::IncentiveModel::Linear, &[0.1, 0.3][..]),
            (rmsa_datasets::IncentiveModel::SuperLinear, &[0.1][..]),
        ] {
            let rows = crate::sweeps::alpha_sweep_values(
                &ctx,
                rmsa_datasets::DatasetKind::LastfmSyn,
                incentive,
                rmsa_diffusion::RrStrategy::Standard,
                values,
            );
            direct.extend(crate::sweeps::sweep_csv_lines(
                &format!("lastfm-syn,{},", incentive.label()),
                &rows,
            ));
        }
        assert_eq!(
            output
                .csv_rows
                .iter()
                .map(|r| deterministic_row(r))
                .collect::<Vec<_>>(),
            direct
                .iter()
                .map(|r| deterministic_row(r))
                .collect::<Vec<_>>(),
        );
    }
}
