//! Integration tests for the manifest/report layer: shipped manifests
//! parse, the fig1 scenario reproduces the legacy binary's rows, and the
//! `BENCH_*.json` schema is golden-file stable.

use rmsa_bench::manifest::{Scenario, SweepSpec};
use rmsa_bench::report::{BenchPoint, BenchReport, RunManifest};
use rmsa_bench::runner::run_scenario;
use rmsa_bench::sweeps::{alpha_sweep_values, sweep_csv_lines, ALPHAS};
use rmsa_bench::{AlgoOutcome, ExperimentContext};
use rmsa_datasets::{DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn every_shipped_manifest_parses() {
    let dir = scenarios_dir();
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let scenario =
            Scenario::load(&path).unwrap_or_else(|e| panic!("{} failed: {e}", path.display()));
        assert!(!scenario.jobs.is_empty(), "{}", path.display());
        count += 1;
    }
    assert!(
        count >= 15,
        "expected the 13 figure/table manifests plus 2 CI scenarios, found {count}"
    );
}

#[test]
fn fig1_manifest_mirrors_the_legacy_binary_structure() {
    // The legacy fig1 binary looped kinds [Flixster, Lastfm] outer and
    // incentives [linear, quasilinear, superlinear] inner; the manifest
    // must preserve that job order so CSV rows stay in the same order.
    let scenario = Scenario::load(&scenarios_dir().join("fig1.toml")).unwrap();
    assert_eq!(scenario.name, "fig1_revenue_vs_alpha");
    assert_eq!(scenario.jobs.len(), 6);
    let expected = [
        (DatasetKind::FlixsterSyn, IncentiveModel::Linear),
        (DatasetKind::FlixsterSyn, IncentiveModel::QuasiLinear),
        (DatasetKind::FlixsterSyn, IncentiveModel::SuperLinear),
        (DatasetKind::LastfmSyn, IncentiveModel::Linear),
        (DatasetKind::LastfmSyn, IncentiveModel::QuasiLinear),
        (DatasetKind::LastfmSyn, IncentiveModel::SuperLinear),
    ];
    for (job, (kind, model)) in scenario.jobs.iter().zip(expected) {
        match &job.sweep {
            SweepSpec::Alpha {
                dataset,
                incentive,
                strategy,
                values,
            } => {
                assert_eq!(*dataset, kind);
                assert_eq!(*incentive, model);
                assert_eq!(*strategy, RrStrategy::Standard);
                assert!(values.is_none(), "fig1 uses the paper's five alphas");
            }
            other => panic!("fig1 job must be an alpha sweep, got {other:?}"),
        }
        assert_eq!(job.prefix, format!("{},{},", kind.name(), model.label()));
    }
}

// Drops the wall-clock columns (`time_secs`, `index_secs`) of a standard
// CSV row; every other column is deterministic for a fixed seed.
use rmsa_bench::sweeps::deterministic_csv_fields as deterministic_row;

#[test]
fn fig1_scenario_reproduces_the_legacy_binary_rows() {
    // The acceptance check of the manifest runner: `rmsa sweep
    // scenarios/fig1.toml` must produce exactly the rows the legacy
    // `fig1_revenue_vs_alpha` binary produced — same seeds, same values —
    // here verified at smoke scale against the legacy loop structure.
    let mut ctx = ExperimentContext::smoke();
    ctx.eval_rr = 5_000;
    ctx.spread_rr = 500;
    let scenario = Scenario::load(&scenarios_dir().join("fig1.toml")).unwrap();
    let output = run_scenario(&scenario, &ctx, false, 3).unwrap();

    // The legacy binary, verbatim (modulo printing): two datasets outer,
    // three incentive models inner, one alpha_sweep each.
    let mut legacy = Vec::new();
    for kind in [DatasetKind::FlixsterSyn, DatasetKind::LastfmSyn] {
        for incentive in IncentiveModel::all() {
            let rows = alpha_sweep_values(&ctx, kind, incentive, RrStrategy::Standard, &ALPHAS);
            legacy.extend(sweep_csv_lines(
                &format!("{},{},", kind.name(), incentive.label()),
                &rows,
            ));
        }
    }
    assert_eq!(output.csv_rows.len(), legacy.len());
    for (ours, theirs) in output.csv_rows.iter().zip(&legacy) {
        assert_eq!(deterministic_row(ours), deterministic_row(theirs));
    }
}

fn golden_report() -> BenchReport {
    BenchReport {
        scenario: "golden".to_string(),
        title: "Golden schema fixture".to_string(),
        points: vec![
            BenchPoint {
                job: "lastfm-syn,linear,".to_string(),
                key: 0.1,
                outcome: AlgoOutcome {
                    algorithm: "RMA".to_string(),
                    revenue: 61.625,
                    revenue_lower_bound: Some(54.25),
                    seeding_cost: 4.5705,
                    seeds: 39,
                    time_secs: 0.015625,
                    rr_sets: 20000,
                    rr_generated: 18000,
                    index_secs: 0.00025,
                    loaded_from_snapshot: 0,
                    snapshot_load_secs: 0.0,
                    memory_bytes: 639132,
                    resident_bytes: 589132,
                    mapped_bytes: 50000,
                    memory_mib: 639132.0 / (1024.0 * 1024.0),
                    budget_usage_pct: 93.25,
                    rate_of_return_pct: 93.125,
                    phases: Vec::new(),
                },
            },
            BenchPoint {
                job: "lastfm-syn,linear,".to_string(),
                key: 0.1,
                outcome: AlgoOutcome {
                    algorithm: "TI-CARM".to_string(),
                    revenue: 50.5,
                    revenue_lower_bound: None,
                    seeding_cost: 5.25,
                    seeds: 41,
                    time_secs: 0.03125,
                    rr_sets: 9000,
                    rr_generated: 9000,
                    index_secs: 0.0005,
                    loaded_from_snapshot: 0,
                    snapshot_load_secs: 0.0,
                    memory_bytes: 292608,
                    resident_bytes: 292608,
                    mapped_bytes: 0,
                    memory_mib: 292608.0 / (1024.0 * 1024.0),
                    budget_usage_pct: 88.5,
                    rate_of_return_pct: 90.25,
                    phases: Vec::new(),
                },
            },
        ],
        total_wall_secs: 0.0625,
        run: RunManifest {
            git_rev: Some("0123abcd4567".to_string()),
            seed: 20_210_620,
            threads: 4,
            scale: 0.05,
            quick: true,
        },
    }
}

#[test]
fn bench_report_schema_matches_the_golden_file() {
    // Guards the BENCH_*.json wire format: if this test fails, either
    // restore compatibility or bump BENCH_SCHEMA_VERSION and regenerate
    // the golden file (and the committed baselines under
    // crates/bench/results/).
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bench_report_v1.json");
    let report = golden_report();
    if std::env::var("RMSA_REGEN_GOLDEN").is_ok() {
        std::fs::write(&golden_path, report.render()).unwrap();
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", golden_path.display()));
    assert_eq!(
        report.render(),
        expected,
        "BENCH_*.json schema drifted from tests/golden/bench_report_v1.json"
    );
    // And the parser reads the golden file back into the same report.
    let parsed = BenchReport::from_json_text(&expected).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn quick_context_is_applied_by_run() {
    // The CI scenarios pin their own quick profile; `quick = true` must
    // pick it up (tiny eval collection => fast) regardless of the base
    // context's full-scale settings.
    let scenario = Scenario::load(&scenarios_dir().join("ci_quick_alpha.toml")).unwrap();
    let base = ExperimentContext::from_env();
    let ctx = scenario.context(&base, true);
    assert_eq!(ctx.eval_rr, 10_000);
    assert_eq!(ctx.num_ads, 3);
    assert_eq!(ctx.scale, 0.05);
    let output = run_scenario(&scenario, &base, true, 2).unwrap();
    assert!(output.report.run.quick);
    assert_eq!(output.report.points.len(), 6, "2 alphas x 3 algorithms");
}
