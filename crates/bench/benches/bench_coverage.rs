//! Micro-benchmark: coverage-index construction, incremental extension,
//! and marginal-gain queries on the RR-set revenue estimator (the inner
//! loop of every greedy pass).
//!
//! The headline comparison is `extend_theta1_to_theta2` versus
//! `rebuild_at_theta2`: growing a warm index from θ₁ to θ₂ only indexes
//! the new sets (plus a copy-on-write of the advertiser/singleton
//! columns), while a from-scratch build re-walks every member entry.
//!
//! Set `RMSA_BENCH_QUICK=1` to shrink the workload for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_core::{RevenueOracle, RrRevenueEstimator};
use rmsa_diffusion::{CoverageIndex, RrArena, RrStrategy, UniformIc, UniformRrSampler};
use rmsa_graph::generators::barabasi_albert;

fn bench_coverage(c: &mut Criterion) {
    let quick = std::env::var("RMSA_BENCH_QUICK").is_ok();
    let (num_nodes, theta2) = if quick {
        (2_000, 8_000)
    } else {
        (10_000, 50_000)
    };
    let theta1 = theta2 / 2;
    let mut rng = Pcg64Mcg::seed_from_u64(3);
    let graph = barabasi_albert(num_nodes, 6, &mut rng);
    let model = UniformIc::new(4, 0.05);
    let sampler = UniformRrSampler::new(&[1.0, 1.5, 2.0, 1.0]);
    let mut arena = RrArena::new(graph.num_nodes(), RrStrategy::Standard);
    arena.generate(&graph, &model, &sampler, theta2, &mut rng);

    // A warm index over the θ₁ prefix, cloned per iteration below.
    let mut warm = CoverageIndex::new(graph.num_nodes(), 4);
    warm.extend_to(&arena, theta1);

    let mut group = c.benchmark_group("coverage");
    group.sample_size(20);
    group.bench_function("rebuild_at_theta2", |b| {
        b.iter(|| {
            let mut index = CoverageIndex::new(graph.num_nodes(), 4);
            index.extend_from(&arena);
            index.num_rr()
        });
    });
    group.bench_function("extend_theta1_to_theta2", |b| {
        b.iter(|| {
            // The clone shares the θ₁ segment; extending indexes only the
            // new θ₂ − θ₁ sets (copy-on-write on the shared columns).
            let mut index = warm.clone();
            index.extend_from(&arena);
            index.num_rr()
        });
    });
    group.bench_function("estimator_snapshot_from_warm_index", |b| {
        let mut index = CoverageIndex::new(graph.num_nodes(), 4);
        index.extend_from(&arena);
        b.iter(|| RrRevenueEstimator::from_view(index.view(), 5.5).num_rr());
    });
    group.bench_function("build_estimator_from_scratch", |b| {
        b.iter(|| RrRevenueEstimator::new(&arena, 4, 5.5).num_rr());
    });

    let est = RrRevenueEstimator::new(&arena, 4, 5.5);
    group.bench_function("greedy_marginal_gains_1000_nodes", |b| {
        b.iter(|| {
            let state = est.new_state(0);
            let mut best = 0.0f64;
            for u in 0..1_000u32 {
                best = best.max(est.marginal_gain(&state, u));
            }
            best
        });
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
