//! Micro-benchmark: coverage-index construction and marginal-gain queries on
//! the RR-set revenue estimator (the inner loop of every greedy pass).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_core::{RevenueOracle, RrRevenueEstimator};
use rmsa_diffusion::{RrCollection, RrStrategy, UniformIc, UniformRrSampler};
use rmsa_graph::generators::barabasi_albert;

fn bench_coverage(c: &mut Criterion) {
    let mut rng = Pcg64Mcg::seed_from_u64(3);
    let graph = barabasi_albert(10_000, 6, &mut rng);
    let model = UniformIc::new(4, 0.05);
    let sampler = UniformRrSampler::new(&[1.0, 1.5, 2.0, 1.0]);
    let mut coll = RrCollection::new(graph.num_nodes(), RrStrategy::Standard);
    coll.generate(&graph, &model, &sampler, 50_000, &mut rng);

    let mut group = c.benchmark_group("coverage");
    group.sample_size(20);
    group.bench_function("build_estimator_50k_sets", |b| {
        b.iter(|| RrRevenueEstimator::new(&coll, 4, 5.5).num_rr());
    });

    let est = RrRevenueEstimator::new(&coll, 4, 5.5);
    group.bench_function("greedy_marginal_gains_1000_nodes", |b| {
        b.iter(|| {
            let state = est.new_state(0);
            let mut best = 0.0f64;
            for u in 0..1_000u32 {
                best = best.max(est.marginal_gain(&state, u));
            }
            best
        });
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
