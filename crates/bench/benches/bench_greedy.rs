//! Micro-benchmark: the Section-3 oracle algorithms running on an RR-set
//! estimator (Greedy, ThresholdGreedy, and the full Search driver).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_core::{
    greedy_single, rm_with_oracle, threshold_greedy, Advertiser, RmInstance, RrRevenueEstimator,
    SeedCosts,
};
use rmsa_diffusion::{RrArena, RrStrategy, UniformIc, UniformRrSampler};
use rmsa_graph::generators::barabasi_albert;
use rmsa_graph::NodeId;

fn setup() -> (RmInstance, RrRevenueEstimator) {
    let mut rng = Pcg64Mcg::seed_from_u64(5);
    let graph = barabasi_albert(5_000, 6, &mut rng);
    let h = 5;
    let model = UniformIc::new(h, 0.05);
    let cpes = vec![1.0; h];
    let sampler = UniformRrSampler::new(&cpes);
    let mut arena = RrArena::new(graph.num_nodes(), RrStrategy::Standard);
    arena.generate(&graph, &model, &sampler, 30_000, &mut rng);
    let estimator = RrRevenueEstimator::new(&arena, h, h as f64);
    let instance = RmInstance::try_new(
        graph.num_nodes(),
        (0..h)
            .map(|_| Advertiser::try_new(60.0, 1.0).unwrap())
            .collect(),
        SeedCosts::Shared(vec![1.0; graph.num_nodes()]),
    )
    .unwrap();
    (instance, estimator)
}

fn bench_greedy(c: &mut Criterion) {
    let (instance, estimator) = setup();
    let mut group = c.benchmark_group("oracle_algorithms");
    group.sample_size(10);
    let candidates: Vec<NodeId> = (0..instance.num_nodes as NodeId).collect();
    group.bench_function("greedy_single_advertiser", |b| {
        b.iter(|| greedy_single(&instance, &estimator, 0, &candidates).best_revenue());
    });
    group.bench_function("threshold_greedy_gamma_zero", |b| {
        b.iter(|| threshold_greedy(&instance, &estimator, 0.0).b);
    });
    group.bench_function("rm_with_oracle_h5", |b| {
        b.iter(|| rm_with_oracle(&instance, &estimator, 0.1).revenue);
    });
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
