//! End-to-end benchmark: RMA versus the TI baselines on a miniature
//! lastfm-syn instance (the per-algorithm cost behind Table 3), plus the
//! same solve on a warm workbench cache (the cost a sweep actually pays).

use criterion::{criterion_group, criterion_main, Criterion};
use rmsa::prelude::*;
use rmsa_datasets::{Dataset, DatasetKind};

fn bench_rma(c: &mut Criterion) {
    let h = 3;
    let dataset = Dataset::build(DatasetKind::LastfmSyn, h, 0.25, 11);
    let advertisers: Vec<Advertiser> = (0..h)
        .map(|_| Advertiser::try_new(80.0, 1.0).unwrap())
        .collect();
    let instance = dataset.build_instance(advertisers, IncentiveModel::Linear, 0.1, 5_000, 3);

    let rma_cfg = RmaConfig {
        epsilon: 0.1,
        rho: 0.1,
        num_threads: 1,
        max_rr_per_collection: 40_000,
        ..RmaConfig::default()
    };
    let ti_cfg = TiConfig {
        epsilon: 0.3,
        pilot_sets: 1_024,
        max_rr_per_ad: 15_000,
        strategy: RrStrategy::Standard,
        ..TiConfig::default()
    };

    let workbench = || {
        Workbench::builder()
            .graph(dataset.graph.clone())
            .model(dataset.model.clone())
            .threads(1)
            .seed(11)
            .build()
            .unwrap()
    };

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("rma_lastfm_mini_cold", |b| {
        b.iter(|| {
            let wb = workbench();
            wb.run_solver(&Rma::new(rma_cfg.clone()), &instance)
                .unwrap()
                .allocation
                .total_seeds()
        });
    });
    let warm = workbench();
    warm.run_solver(&Rma::new(rma_cfg.clone()), &instance)
        .unwrap();
    group.bench_function("rma_lastfm_mini_warm_cache", |b| {
        b.iter(|| {
            warm.run_solver(&Rma::new(rma_cfg.clone()), &instance)
                .unwrap()
                .allocation
                .total_seeds()
        });
    });
    group.bench_function("ti_csrm_lastfm_mini", |b| {
        let wb = workbench();
        b.iter(|| {
            wb.run_solver(&TiCsrm::new(ti_cfg.clone()), &instance)
                .unwrap()
                .allocation
                .total_seeds()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rma);
criterion_main!(benches);
