//! End-to-end benchmark: RMA versus the TI baselines on a miniature
//! lastfm-syn instance (the per-algorithm cost behind Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use rmsa_core::baselines::{ti_csrm, TiConfig};
use rmsa_core::{rm_without_oracle, Advertiser, RmaConfig};
use rmsa_datasets::{Dataset, DatasetKind, IncentiveModel};
use rmsa_diffusion::RrStrategy;

fn bench_rma(c: &mut Criterion) {
    let h = 3;
    let dataset = Dataset::build(DatasetKind::LastfmSyn, h, 0.25, 11);
    let advertisers: Vec<Advertiser> = (0..h).map(|_| Advertiser::new(80.0, 1.0)).collect();
    let instance = dataset.build_instance(advertisers, IncentiveModel::Linear, 0.1, 5_000, 3);

    let rma_cfg = RmaConfig {
        epsilon: 0.15,
        rho: 0.1,
        num_threads: 1,
        max_rr_per_collection: 40_000,
        ..RmaConfig::default()
    };
    let ti_cfg = TiConfig {
        epsilon: 0.3,
        pilot_sets: 1_024,
        max_rr_per_ad: 15_000,
        strategy: RrStrategy::Standard,
        ..TiConfig::default()
    };

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("rma_lastfm_mini", |b| {
        b.iter(|| {
            rm_without_oracle(&dataset.graph, &dataset.model, &instance, &rma_cfg)
                .allocation
                .total_seeds()
        });
    });
    group.bench_function("ti_csrm_lastfm_mini", |b| {
        b.iter(|| {
            ti_csrm(&dataset.graph, &dataset.model, &instance, &ti_cfg)
                .allocation
                .total_seeds()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rma);
criterion_main!(benches);
