//! Micro-benchmark: RR-set generation cost, standard reverse BFS vs the
//! SUBSIM geometric-skip fast path (Table 6's underlying speed-up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_diffusion::{RrGenerator, RrStrategy, WeightedCascade};
use rmsa_graph::generators::barabasi_albert;

fn bench_rr_generation(c: &mut Criterion) {
    let mut rng = Pcg64Mcg::seed_from_u64(1);
    let graph = barabasi_albert(20_000, 8, &mut rng);
    let model = WeightedCascade::new(&graph, 1);
    let mut group = c.benchmark_group("rr_generation");
    group.sample_size(20);
    for strategy in [RrStrategy::Standard, RrStrategy::Subsim] {
        group.bench_with_input(
            BenchmarkId::new("weighted_cascade", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let mut gen = RrGenerator::new(graph.num_nodes(), strategy);
                let mut rng = Pcg64Mcg::seed_from_u64(2);
                b.iter(|| {
                    let mut total = 0usize;
                    for _ in 0..200 {
                        total += gen.generate(&graph, &model, 0, &mut rng).len();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rr_generation);
criterion_main!(benches);
