//! Micro-benchmark: synthetic graph generation and CSR construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_graph::generators::{barabasi_albert, erdos_renyi};

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Pcg64Mcg::seed_from_u64(7);
                barabasi_albert(n, 8, &mut rng).num_edges()
            });
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Pcg64Mcg::seed_from_u64(7);
                erdos_renyi(n, 8.0 / n as f64, &mut rng).num_edges()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
