//! The single source of truth for worker-thread defaults.
//!
//! Every layer that owns RR-set generation (the shared `RrCache` behind a
//! `Workbench`, [`crate::RmaConfig`]'s deprecated free-function path, and
//! the experiment harness) defaults its thread count from here, so setting
//! `RMSA_THREADS` configures the whole stack consistently. Thread count
//! never changes the generated collections — generation is chunked on
//! `(seed, chunk_index)` — so this is purely a throughput knob.

/// Fallback when `RMSA_THREADS` is unset or unparsable.
pub const FALLBACK_THREADS: usize = 4;

/// The default worker-thread count: `RMSA_THREADS` when set to a positive
/// integer, [`FALLBACK_THREADS`] otherwise.
pub fn default_num_threads() -> usize {
    std::env::var("RMSA_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(FALLBACK_THREADS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_positive() {
        // Whatever the environment says, the result is a usable count.
        assert!(default_num_threads() >= 1);
    }
}
