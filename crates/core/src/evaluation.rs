//! Algorithm-independent evaluation of allocations.
//!
//! Following Section 5.1 of the paper, the revenue reported in every
//! experiment is measured on RR-sets generated *independently* of those the
//! algorithms used for optimisation (the paper uses 10⁷ sets; the count here
//! is configurable). This module also reports the derived quantities shown
//! in Fig. 6: budget usage and rate of return.

use crate::problem::{Allocation, RmInstance};
use crate::sampling::estimator::RrRevenueEstimator;
use rmsa_diffusion::{PropagationModel, RrArena, RrStrategy, UniformRrSampler};
use rmsa_graph::DirectedGraph;
use serde::{Deserialize, Serialize};

/// Summary of an allocation's quality under an independent evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Estimated total revenue `π(S⃗)`.
    pub revenue: f64,
    /// Total seed-incentive cost `Σ_i c_i(S_i)`.
    pub seeding_cost: f64,
    /// Total number of seeds.
    pub total_seeds: usize,
    /// Per-advertiser revenue.
    pub per_ad_revenue: Vec<f64>,
    /// Per-advertiser seeding cost.
    pub per_ad_cost: Vec<f64>,
    /// Budget usage `(π(S⃗) + Σ_i c_i(S_i)) / Σ_i B_i` as a percentage.
    pub budget_usage_pct: f64,
    /// Rate of return `π(S⃗) / (π(S⃗) + Σ_i c_i(S_i))` as a percentage.
    pub rate_of_return_pct: f64,
}

/// An independent evaluator: a dedicated RR-set collection (uniform
/// advertiser-proportional sampling) that is never shown to the algorithms.
pub struct IndependentEvaluator {
    estimator: RrRevenueEstimator,
}

impl IndependentEvaluator {
    /// Build an evaluator with `num_rr_sets` independent RR-sets.
    pub fn build<M: PropagationModel>(
        graph: &DirectedGraph,
        model: &M,
        instance: &RmInstance,
        num_rr_sets: usize,
        num_threads: usize,
        seed: u64,
    ) -> Self {
        let sampler = UniformRrSampler::new(&instance.cpe_values());
        let mut arena = RrArena::new(instance.num_nodes, RrStrategy::Standard);
        arena.generate_parallel(graph, model, &sampler, num_rr_sets, num_threads, seed);
        IndependentEvaluator {
            estimator: RrRevenueEstimator::new(&arena, instance.num_ads(), instance.gamma()),
        }
    }

    /// Wrap an existing estimator (e.g. built over a shared cache's
    /// evaluation stream, which no solver ever reads for optimisation).
    pub fn from_estimator(estimator: RrRevenueEstimator) -> Self {
        IndependentEvaluator { estimator }
    }

    /// Estimated total revenue of an allocation.
    pub fn revenue(&self, allocation: &Allocation) -> f64 {
        self.estimator.allocation_estimate(&allocation.seed_sets)
    }

    /// Full evaluation report for an allocation under `instance`.
    pub fn report(&self, instance: &RmInstance, allocation: &Allocation) -> EvaluationReport {
        use crate::oracle::RevenueOracle;
        let per_ad_revenue: Vec<f64> = allocation
            .seed_sets
            .iter()
            .enumerate()
            .map(|(ad, s)| self.estimator.revenue(ad, s))
            .collect();
        let per_ad_cost: Vec<f64> = allocation
            .seed_sets
            .iter()
            .enumerate()
            .map(|(ad, s)| instance.set_cost(ad, s))
            .collect();
        let revenue: f64 = per_ad_revenue.iter().sum();
        let seeding_cost: f64 = per_ad_cost.iter().sum();
        let total_budget: f64 = (0..instance.num_ads()).map(|i| instance.budget(i)).sum();
        let spend = revenue + seeding_cost;
        EvaluationReport {
            revenue,
            seeding_cost,
            total_seeds: allocation.total_seeds(),
            per_ad_revenue,
            per_ad_cost,
            budget_usage_pct: if total_budget > 0.0 {
                100.0 * spend / total_budget
            } else {
                0.0
            },
            rate_of_return_pct: if spend > 0.0 {
                100.0 * revenue / spend
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::graph_from_edges;

    fn setup() -> (DirectedGraph, UniformIc, RmInstance) {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5)]);
        let m = UniformIc::new(2, 1.0);
        let inst = RmInstance::try_new(
            6,
            vec![
                Advertiser::try_new(10.0, 1.0).unwrap(),
                Advertiser::try_new(10.0, 2.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 6]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn report_contains_consistent_aggregates() {
        let (g, m, inst) = setup();
        let ev = IndependentEvaluator::build(&g, &m, &inst, 20_000, 1, 3);
        let mut alloc = Allocation::empty(2);
        alloc.seed_sets[0] = vec![0];
        alloc.seed_sets[1] = vec![3];
        let rep = ev.report(&inst, &alloc);
        assert_eq!(rep.total_seeds, 2);
        assert!((rep.revenue - rep.per_ad_revenue.iter().sum::<f64>()).abs() < 1e-9);
        assert!((rep.seeding_cost - 2.0).abs() < 1e-9);
        // Deterministic spreads: σ_0({0}) = 3, σ_1({3}) = 3 so revenue ≈ 3 + 6.
        assert!((rep.revenue - 9.0).abs() < 0.5, "revenue {}", rep.revenue);
        let spend = rep.revenue + rep.seeding_cost;
        assert!((rep.budget_usage_pct - 100.0 * spend / 20.0).abs() < 1e-9);
        assert!((rep.rate_of_return_pct - 100.0 * rep.revenue / spend).abs() < 1e-9);
    }

    #[test]
    fn empty_allocation_reports_zero() {
        let (g, m, inst) = setup();
        let ev = IndependentEvaluator::build(&g, &m, &inst, 1_000, 1, 3);
        let rep = ev.report(&inst, &Allocation::empty(2));
        assert_eq!(rep.revenue, 0.0);
        assert_eq!(rep.rate_of_return_pct, 0.0);
        assert_eq!(rep.budget_usage_pct, 0.0);
    }

    #[test]
    fn evaluator_is_independent_of_the_seed_used_by_algorithms() {
        let (g, m, inst) = setup();
        let a = IndependentEvaluator::build(&g, &m, &inst, 30_000, 1, 1);
        let b = IndependentEvaluator::build(&g, &m, &inst, 30_000, 1, 2);
        let mut alloc = Allocation::empty(2);
        alloc.seed_sets[0] = vec![0];
        let ra = a.revenue(&alloc);
        let rb = b.revenue(&alloc);
        assert!((ra - rb).abs() / ra.max(1.0) < 0.1);
    }
}
