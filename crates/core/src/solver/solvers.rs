//! [`Solver`] implementations for every algorithm in the crate.

use super::{RrAccounting, SolveContext, SolveReport, Solver};
use crate::algorithms::rm_oracle::rm_with_oracle;
use crate::baselines::{baseline_greedy, ti_baseline, BaselineRule, TiConfig, TiRule};
use crate::error::RmError;
use crate::oracle::{ExactRevenueOracle, McRevenueOracle, RevenueOracle};
use crate::problem::Allocation;
use crate::sampling::estimator::RrRevenueEstimator;
use crate::sampling::rma::{one_batch_with_cache, rma_with_cache, RmaConfig};
use rmsa_diffusion::{RrRequestStats, RrStream};
use std::time::{Duration, Instant};

fn accounting(used: usize, request: RrRequestStats) -> RrAccounting {
    RrAccounting {
        used,
        generated: request.generated,
        reused: request.served_from_cache,
        index_extended: request.index_extended,
        index_reused: request.index_reused,
    }
}

/// The paper's headline algorithm: progressive-sampling
/// `RM_without_Oracle` (Algorithm 6) on the shared cache.
#[derive(Clone, Debug, Default)]
pub struct Rma {
    /// Algorithm parameters (ε, δ, τ, ϱ, practical cap).
    pub config: RmaConfig,
}

impl Rma {
    /// An RMA solver with the given configuration.
    pub fn new(config: RmaConfig) -> Self {
        Rma { config }
    }
}

impl Solver for Rma {
    fn name(&self) -> String {
        "RMA".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let result = rma_with_cache(ctx.graph, &ctx.model, ctx.instance, &self.config, ctx.cache)?;
        Ok(SolveReport {
            solver: self.name(),
            seeding_cost: result.allocation.total_cost(ctx.instance),
            revenue_estimate: result.revenue_estimate,
            revenue_lower_bound: Some(result.revenue_lower_bound),
            beta: Some(result.beta),
            lambda: Some(result.lambda),
            feasible: result.feasible,
            capped: result.capped,
            iterations: result.iterations,
            rr: RrAccounting {
                used: result.total_rr_sets,
                generated: result.rr_generated,
                reused: result.rr_reused,
                index_extended: result.index_extended,
                index_reused: result.index_reused,
            },
            memory_bytes: result.memory_bytes,
            mapped_bytes: result.mapped_bytes,
            index_time: result.index_time,
            loaded_from_snapshot: 0,
            snapshot_load_time: Duration::ZERO,
            elapsed: result.elapsed,
            allocation: result.allocation,
        })
    }
}

/// The one-batch variant of Section 4.3: a single RR-set collection sized
/// up front, one `RM_with_Oracle` pass under relaxed budgets.
///
/// On a warm cache the shared collection may already exceed the requested
/// size; the solve then uses all available RR-sets (a strictly better
/// estimate) and `rr.used` reports the actual count.
#[derive(Clone, Debug)]
pub struct OneBatch {
    /// Shared sampling parameters (ϱ, τ and the practical cap are used).
    pub config: RmaConfig,
    /// Collection size; `None` sizes it at the Theorem-4.2 cap `θ_max`
    /// (clipped by `config.max_rr_per_collection`).
    pub num_rr_sets: Option<usize>,
}

impl OneBatch {
    /// A one-batch solver with an explicit collection size.
    pub fn new(config: RmaConfig, num_rr_sets: usize) -> Self {
        OneBatch {
            config,
            num_rr_sets: Some(num_rr_sets),
        }
    }

    /// A one-batch solver sized at the theoretical cap.
    pub fn at_theta_max(config: RmaConfig) -> Self {
        OneBatch {
            config,
            num_rr_sets: None,
        }
    }
}

impl Solver for OneBatch {
    fn name(&self) -> String {
        "OneBatch".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        use crate::approx::lambda;
        use crate::sampling::bounds::{theta_max, BoundParams};
        let start = Instant::now();
        let requested = match self.num_rr_sets {
            Some(n) => n,
            None => {
                self.config.validate(ctx.num_ads())?;
                let params = BoundParams::from_instance(ctx.instance, self.config.rho);
                let lam = lambda(ctx.num_ads(), self.config.tau);
                let cap = theta_max(
                    &params,
                    self.config.epsilon,
                    self.config.delta / 4.0,
                    lam,
                    self.config.rho,
                );
                cap.ceil() as usize
            }
        };
        // The practical memory cap applies to explicit sizes too; `capped`
        // is set only when the request was actually truncated.
        let num_rr = requested.min(self.config.max_rr_per_collection);
        let (allocation, est, request) = one_batch_with_cache(
            ctx.graph,
            &ctx.model,
            ctx.instance,
            num_rr,
            &self.config,
            ctx.cache,
        )?;
        Ok(SolveReport {
            solver: self.name(),
            seeding_cost: allocation.total_cost(ctx.instance),
            revenue_estimate: est.allocation_estimate(&allocation.seed_sets),
            revenue_lower_bound: None,
            beta: None,
            lambda: Some(crate::approx::lambda(ctx.num_ads(), self.config.tau)),
            feasible: true,
            capped: requested > num_rr,
            iterations: 1,
            rr: accounting(est.num_rr(), request),
            memory_bytes: est.coverage().memory_bytes(),
            mapped_bytes: est.coverage().mapped_bytes(),
            index_time: request.index_extend_time,
            loaded_from_snapshot: 0,
            snapshot_load_time: Duration::ZERO,
            elapsed: start.elapsed(),
            allocation,
        })
    }
}

/// How an oracle-setting solver evaluates revenue.
#[derive(Clone, Debug)]
pub enum OracleMode {
    /// Exact possible-world enumeration — exponential in the edge count,
    /// for tiny graphs only.
    Exact,
    /// Monte-Carlo forward simulation with a fixed cascade count.
    MonteCarlo {
        /// Cascades per revenue query.
        simulations: usize,
        /// Base RNG seed (queries derive deterministic streams from it).
        seed: u64,
    },
    /// The Section-4.2 RR-set estimator drawn from the shared cache.
    Sampled {
        /// RR-sets to request from the cache's optimize stream.
        num_rr_sets: usize,
    },
}

/// Which Section-3 style algorithm an oracle-mode solver runs.
enum OracleAlgo {
    /// `RM_with_Oracle(τ)` (Algorithm 5).
    RmOracle {
        /// Binary-search accuracy τ of `Search`.
        tau: f64,
    },
    /// CA-/CS-Greedy of Aslay et al.
    Baseline(BaselineRule),
}

/// Run one oracle-mode algorithm under one [`OracleMode`], reporting
/// `(allocation, revenue estimate, λ if any, rr accounting, memory bytes,
/// index-extension time)`.
#[allow(clippy::type_complexity)]
fn run_oracle_algo(
    ctx: &SolveContext<'_>,
    mode: &OracleMode,
    algo: &OracleAlgo,
) -> Result<
    (
        Allocation,
        f64,
        Option<f64>,
        RrAccounting,
        (usize, usize),
        Duration,
    ),
    RmError,
> {
    fn finish<O: RevenueOracle>(
        ctx: &SolveContext<'_>,
        oracle: &O,
        algo: &OracleAlgo,
    ) -> (Allocation, f64, Option<f64>) {
        match algo {
            OracleAlgo::RmOracle { tau } => {
                let sol = rm_with_oracle(ctx.instance, oracle, *tau);
                (sol.allocation, sol.revenue, Some(sol.lambda))
            }
            OracleAlgo::Baseline(rule) => {
                let alloc = baseline_greedy(ctx.instance, oracle, *rule);
                let revenue = oracle.allocation_revenue(&alloc.seed_sets);
                (alloc, revenue, None)
            }
        }
    }

    if let OracleAlgo::RmOracle { tau } = algo {
        if !(*tau > 0.0 && *tau < 1.0) {
            return Err(RmError::invalid_parameter("tau", *tau, "(0, 1)"));
        }
    }
    match mode {
        OracleMode::Exact => {
            let model = ctx.model;
            let oracle = ExactRevenueOracle::new(ctx.graph, &model, ctx.instance);
            let (alloc, revenue, lam) = finish(ctx, &oracle, algo);
            Ok((
                alloc,
                revenue,
                lam,
                RrAccounting::default(),
                (0, 0),
                Duration::ZERO,
            ))
        }
        OracleMode::MonteCarlo { simulations, seed } => {
            if *simulations == 0 {
                return Err(RmError::invalid_parameter("simulations", 0.0, "[1, ∞)"));
            }
            let model = ctx.model;
            let oracle = McRevenueOracle::new(ctx.graph, &model, ctx.instance, *simulations, *seed);
            let (alloc, revenue, lam) = finish(ctx, &oracle, algo);
            Ok((
                alloc,
                revenue,
                lam,
                RrAccounting::default(),
                (0, 0),
                Duration::ZERO,
            ))
        }
        OracleMode::Sampled { num_rr_sets } => {
            if *num_rr_sets == 0 {
                return Err(RmError::invalid_parameter("num_rr_sets", 0.0, "[1, ∞)"));
            }
            let sampler = ctx.sampler();
            let (est, request) = ctx.cache.with_at_least(
                ctx.graph,
                &ctx.model,
                &sampler,
                RrStream::Optimize,
                *num_rr_sets,
                |v| RrRevenueEstimator::from_view(v.coverage(), ctx.instance.gamma()),
            );
            let (alloc, revenue, lam) = finish(ctx, &est, algo);
            let memory = (est.coverage().memory_bytes(), est.coverage().mapped_bytes());
            Ok((
                alloc,
                revenue,
                lam,
                accounting(est.num_rr(), request),
                memory,
                request.index_extend_time,
            ))
        }
    }
}

fn oracle_report(
    name: String,
    ctx: &SolveContext<'_>,
    outcome: (
        Allocation,
        f64,
        Option<f64>,
        RrAccounting,
        (usize, usize),
        Duration,
    ),
    start: Instant,
) -> SolveReport {
    let (allocation, revenue_estimate, lambda, rr, (memory_bytes, mapped_bytes), index_time) =
        outcome;
    SolveReport {
        solver: name,
        seeding_cost: allocation.total_cost(ctx.instance),
        revenue_estimate,
        revenue_lower_bound: None,
        beta: None,
        lambda,
        feasible: true,
        capped: false,
        iterations: 1,
        rr,
        memory_bytes,
        mapped_bytes,
        index_time,
        loaded_from_snapshot: 0,
        snapshot_load_time: Duration::ZERO,
        elapsed: start.elapsed(),
        allocation,
    }
}

/// `RM_with_Oracle(τ)` (Algorithm 5) under an exact, Monte-Carlo, or
/// RR-sampled revenue oracle.
#[derive(Clone, Debug)]
pub struct OracleGreedy {
    /// Revenue-oracle backend.
    pub mode: OracleMode,
    /// Binary-search accuracy τ ∈ (0, 1) of `Search`.
    pub tau: f64,
}

impl OracleGreedy {
    /// Algorithm 5 with the exact possible-world oracle (tiny graphs only).
    pub fn exact(tau: f64) -> Self {
        OracleGreedy {
            mode: OracleMode::Exact,
            tau,
        }
    }

    /// Algorithm 5 with a Monte-Carlo oracle.
    pub fn monte_carlo(tau: f64, simulations: usize, seed: u64) -> Self {
        OracleGreedy {
            mode: OracleMode::MonteCarlo { simulations, seed },
            tau,
        }
    }

    /// Algorithm 5 with the RR-set estimator from the shared cache.
    pub fn sampled(tau: f64, num_rr_sets: usize) -> Self {
        OracleGreedy {
            mode: OracleMode::Sampled { num_rr_sets },
            tau,
        }
    }
}

impl Solver for OracleGreedy {
    fn name(&self) -> String {
        match &self.mode {
            OracleMode::Exact => "RM-Oracle(exact)".to_string(),
            OracleMode::MonteCarlo { .. } => "RM-Oracle(mc)".to_string(),
            OracleMode::Sampled { .. } => "RM-Oracle(rr)".to_string(),
        }
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let start = Instant::now();
        let outcome = run_oracle_algo(ctx, &self.mode, &OracleAlgo::RmOracle { tau: self.tau })?;
        Ok(oracle_report(self.name(), ctx, outcome, start))
    }
}

/// Cost-Agnostic Greedy of Aslay et al. (selects by marginal gain;
/// saturates an advertiser at its first budget violation).
#[derive(Clone, Debug)]
pub struct CaGreedy {
    /// Revenue-oracle backend.
    pub mode: OracleMode,
}

impl CaGreedy {
    /// CA-Greedy under the given oracle backend.
    pub fn new(mode: OracleMode) -> Self {
        CaGreedy { mode }
    }
}

impl Solver for CaGreedy {
    fn name(&self) -> String {
        "CA-Greedy".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let start = Instant::now();
        let outcome = run_oracle_algo(
            ctx,
            &self.mode,
            &OracleAlgo::Baseline(BaselineRule::CostAgnostic),
        )?;
        Ok(oracle_report(self.name(), ctx, outcome, start))
    }
}

/// Cost-Sensitive Greedy of Aslay et al. (selects by marginal rate; skips
/// infeasible elements).
#[derive(Clone, Debug)]
pub struct CsGreedy {
    /// Revenue-oracle backend.
    pub mode: OracleMode,
}

impl CsGreedy {
    /// CS-Greedy under the given oracle backend.
    pub fn new(mode: OracleMode) -> Self {
        CsGreedy { mode }
    }
}

impl Solver for CsGreedy {
    fn name(&self) -> String {
        "CS-Greedy".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let start = Instant::now();
        let outcome = run_oracle_algo(
            ctx,
            &self.mode,
            &OracleAlgo::Baseline(BaselineRule::CostSensitive),
        )?;
        Ok(oracle_report(self.name(), ctx, outcome, start))
    }
}

fn ti_report(
    name: String,
    ctx: &SolveContext<'_>,
    result: crate::baselines::TiResult,
) -> SolveReport {
    SolveReport {
        solver: name,
        seeding_cost: result.allocation.total_cost(ctx.instance),
        revenue_estimate: result.revenue_estimate,
        revenue_lower_bound: None,
        beta: None,
        lambda: None,
        feasible: true,
        capped: result.capped,
        iterations: 1,
        rr: RrAccounting {
            used: result.total_rr_sets,
            generated: result.total_rr_sets,
            reused: 0,
            // The TI baselines build private per-advertiser TIM indexes —
            // nothing goes through the shared coverage index, so there is
            // no shared-index work to report.
            index_extended: 0,
            index_reused: 0,
        },
        memory_bytes: result.memory_bytes,
        // The TI baselines own all their sample structures on the heap —
        // nothing is borrowed from a mapped snapshot.
        mapped_bytes: 0,
        index_time: Duration::ZERO,
        loaded_from_snapshot: 0,
        snapshot_load_time: Duration::ZERO,
        elapsed: result.elapsed,
        allocation: result.allocation,
    }
}

/// TI-CARM of Aslay et al.: per-advertiser TIM-style collections, cost-
/// agnostic selection, conservative upper-bound feasibility.
///
/// Per the paper's comparison protocol the baselines may receive budgets
/// scaled by `(1 + ϱ)` relative to RMA's; set `budget_scale` accordingly.
/// The per-ad collections cannot reuse the uniform-sampler cache — their
/// generation cost is part of what the experiments measure.
#[derive(Clone, Debug)]
pub struct TiCarm {
    /// TIM-style sampling parameters.
    pub config: TiConfig,
    /// Budget multiplier applied before solving (1.0 = none).
    pub budget_scale: f64,
}

impl TiCarm {
    /// TI-CARM with unscaled budgets.
    pub fn new(config: TiConfig) -> Self {
        TiCarm {
            config,
            budget_scale: 1.0,
        }
    }

    /// TI-CARM with budgets scaled by `scale` (the paper uses `1 + ϱ`).
    pub fn with_budget_scale(config: TiConfig, scale: f64) -> Self {
        TiCarm {
            config,
            budget_scale: scale,
        }
    }
}

impl Solver for TiCarm {
    fn name(&self) -> String {
        "TI-CARM".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let instance = scaled(ctx, self.budget_scale)?;
        let result = ti_baseline(
            ctx.graph,
            &ctx.model,
            &instance,
            &self.config,
            TiRule::CostAgnostic,
        )?;
        Ok(ti_report(self.name(), ctx, result))
    }
}

/// TI-CSRM of Aslay et al. (cost-sensitive variant of [`TiCarm`]).
#[derive(Clone, Debug)]
pub struct TiCsrm {
    /// TIM-style sampling parameters.
    pub config: TiConfig,
    /// Budget multiplier applied before solving (1.0 = none).
    pub budget_scale: f64,
}

impl TiCsrm {
    /// TI-CSRM with unscaled budgets.
    pub fn new(config: TiConfig) -> Self {
        TiCsrm {
            config,
            budget_scale: 1.0,
        }
    }

    /// TI-CSRM with budgets scaled by `scale` (the paper uses `1 + ϱ`).
    pub fn with_budget_scale(config: TiConfig, scale: f64) -> Self {
        TiCsrm {
            config,
            budget_scale: scale,
        }
    }
}

impl Solver for TiCsrm {
    fn name(&self) -> String {
        "TI-CSRM".to_string()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        let instance = scaled(ctx, self.budget_scale)?;
        let result = ti_baseline(
            ctx.graph,
            &ctx.model,
            &instance,
            &self.config,
            TiRule::CostSensitive,
        )?;
        Ok(ti_report(self.name(), ctx, result))
    }
}

fn scaled(ctx: &SolveContext<'_>, scale: f64) -> Result<crate::problem::RmInstance, RmError> {
    if !(scale > 0.0 && scale.is_finite()) {
        return Err(RmError::invalid_parameter("budget_scale", scale, "(0, ∞)"));
    }
    Ok(if scale == 1.0 {
        ctx.instance.clone()
    } else {
        ctx.instance.with_scaled_budgets(scale)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, RmInstance, SeedCosts};
    use rmsa_diffusion::{RrCache, RrStrategy, UniformIc};
    use rmsa_graph::generators::celebrity_graph;
    use rmsa_graph::DirectedGraph;

    struct World {
        graph: DirectedGraph,
        model: UniformIc,
        instance: RmInstance,
        cache: RrCache,
    }

    impl World {
        fn new(h: usize) -> Self {
            let graph = celebrity_graph(5, 7);
            let model = UniformIc::new(h, 0.4);
            let n = graph.num_nodes();
            let instance = RmInstance::try_new(
                n,
                (0..h)
                    .map(|_| Advertiser::try_new(12.0, 1.0).unwrap())
                    .collect(),
                SeedCosts::Shared(vec![1.0; n]),
            )
            .unwrap();
            let cache = RrCache::new(n, RrStrategy::Standard, 1, 99);
            World {
                graph,
                model,
                instance,
                cache,
            }
        }

        fn ctx(&self) -> SolveContext<'_> {
            SolveContext::new(&self.graph, &self.model, &self.instance, &self.cache).unwrap()
        }
    }

    fn quick_rma() -> RmaConfig {
        RmaConfig {
            epsilon: 0.1,
            delta: 0.1,
            rho: 0.2,
            num_threads: 1,
            max_rr_per_collection: 30_000,
            ..RmaConfig::default()
        }
    }

    #[test]
    fn every_solver_returns_a_disjoint_allocation() {
        let world = World::new(3);
        let ti_cfg = TiConfig {
            pilot_sets: 256,
            max_rr_per_ad: 3_000,
            epsilon: 0.3,
            ..TiConfig::default()
        };
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(Rma::new(quick_rma())),
            Box::new(OneBatch::new(quick_rma(), 8_000)),
            Box::new(OracleGreedy::sampled(0.1, 8_000)),
            Box::new(OracleGreedy::monte_carlo(0.1, 64, 5)),
            Box::new(CaGreedy::new(OracleMode::Sampled { num_rr_sets: 8_000 })),
            Box::new(CsGreedy::new(OracleMode::Sampled { num_rr_sets: 8_000 })),
            Box::new(TiCarm::with_budget_scale(ti_cfg.clone(), 1.2)),
            Box::new(TiCsrm::with_budget_scale(ti_cfg, 1.2)),
        ];
        let ctx = world.ctx();
        for solver in &solvers {
            let report = solver.solve(&ctx).unwrap_or_else(|e| {
                panic!("solver {} failed: {e}", solver.name());
            });
            assert!(
                report.allocation.is_disjoint(),
                "{} violated the partition constraint",
                report.solver
            );
            assert_eq!(report.solver, solver.name());
            assert!(report.seeding_cost >= 0.0);
            assert!(!report.summary().is_empty());
        }
        // The sampled solvers shared the cache's optimize stream: total
        // generation is bounded by the largest request, not the sum.
        let stats = world.cache.stats();
        assert!(stats.served_from_cache > 0, "cache reuse expected");
    }

    #[test]
    fn exact_oracle_greedy_works_on_a_tiny_graph() {
        let graph = rmsa_graph::graph_from_edges(6, &[(0, 1), (0, 2), (3, 4)]);
        let model = UniformIc::new(2, 0.6);
        let instance = RmInstance::try_new(
            6,
            vec![
                Advertiser::try_new(4.0, 1.0).unwrap(),
                Advertiser::try_new(4.0, 1.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 6]),
        )
        .unwrap();
        let cache = RrCache::new(6, RrStrategy::Standard, 1, 3);
        let ctx = SolveContext::new(&graph, &model, &instance, &cache).unwrap();
        let report = OracleGreedy::exact(0.1).solve(&ctx).unwrap();
        assert!(report.allocation.is_disjoint());
        assert_eq!(report.rr.used, 0, "exact mode generates no RR-sets");
        assert!(report.lambda.is_some());
    }

    #[test]
    fn rma_solver_reports_certificate_fields() {
        let world = World::new(2);
        let report = Rma::new(quick_rma()).solve(&world.ctx()).unwrap();
        assert!(report.beta.is_some());
        assert!(report.lambda.is_some());
        assert!(report.revenue_lower_bound.is_some());
        assert!(report.rr.used > 0);
        assert!(report.iterations >= 1);
    }

    #[test]
    fn invalid_parameters_surface_as_errors() {
        let world = World::new(2);
        let ctx = world.ctx();
        let mut bad = quick_rma();
        bad.epsilon = 0.9;
        assert!(Rma::new(bad).solve(&ctx).is_err());
        assert!(OracleGreedy::sampled(0.0, 1_000).solve(&ctx).is_err());
        assert!(OracleGreedy::monte_carlo(0.1, 0, 1).solve(&ctx).is_err());
        assert!(CaGreedy::new(OracleMode::Sampled { num_rr_sets: 0 })
            .solve(&ctx)
            .is_err());
        let mut ti = TiCarm::new(TiConfig::default());
        ti.budget_scale = -1.0;
        assert!(ti.solve(&ctx).is_err());
    }

    #[test]
    fn budget_scale_relaxes_the_ti_baselines() {
        let world = World::new(2);
        let ctx = world.ctx();
        let cfg = TiConfig {
            pilot_sets: 256,
            max_rr_per_ad: 2_000,
            epsilon: 0.3,
            ..TiConfig::default()
        };
        let tight = TiCsrm::new(cfg.clone()).solve(&ctx).unwrap();
        let loose = TiCsrm::with_budget_scale(cfg, 4.0).solve(&ctx).unwrap();
        assert!(
            loose.allocation.total_seeds() >= tight.allocation.total_seeds(),
            "larger budgets cannot shrink the TI seed set"
        );
    }
}
