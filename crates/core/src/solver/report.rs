//! The unified result type returned by every [`crate::solver::Solver`].

use crate::problem::Allocation;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// RR-set accounting of one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrAccounting {
    /// RR-sets the solver's final answer was computed on (0 for pure
    /// oracle-mode solvers).
    pub used: usize,
    /// RR-sets actually generated during this solve. Under a warm
    /// [`rmsa_diffusion::RrCache`] this can be far below `used`.
    pub generated: usize,
    /// RR-sets served from the shared cache instead of being generated.
    pub reused: usize,
    /// RR-sets newly added to the shared coverage index during this solve
    /// (each set is indexed exactly once across a cache's lifetime).
    pub index_extended: usize,
    /// RR-sets whose coverage-index entries already existed when this
    /// solve ran — the work a per-estimator index rebuild would have
    /// repeated.
    pub index_reused: usize,
}

/// Outcome of one [`crate::solver::Solver::solve`] call: the allocation
/// plus the metrics every experiment in the paper reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveReport {
    /// Name of the solver that produced this report.
    pub solver: String,
    /// The selected allocation `S⃗*` (always partition-disjoint).
    pub allocation: Allocation,
    /// The solver's own estimate of `π(S⃗*)` (on its validation collection,
    /// its oracle, or its per-ad samples — see each solver's docs).
    pub revenue_estimate: f64,
    /// Certified lower bound `LB(S⃗*)` where the algorithm provides one
    /// (RMA's martingale bound); `None` for heuristic/oracle solvers.
    pub revenue_lower_bound: Option<f64>,
    /// Total seed-incentive cost `Σ_i c_i(S_i)`.
    pub seeding_cost: f64,
    /// Achieved approximation certificate `β = LB(S⃗*)/UB(O⃗)` where
    /// available (RMA).
    pub beta: Option<f64>,
    /// Instance-independent ratio λ of Theorem 3.5 where the solver comes
    /// with one.
    pub lambda: Option<f64>,
    /// Whether the solver's own budget-feasibility check passed.
    pub feasible: bool,
    /// Whether a practical sample-size cap truncated the run.
    pub capped: bool,
    /// Progressive rounds executed (1 for single-pass solvers).
    pub iterations: usize,
    /// RR-set accounting.
    pub rr: RrAccounting,
    /// Approximate footprint of the solver's sample structures in bytes
    /// (the paper's Fig. 4 memory proxy): heap allocations plus any pages
    /// borrowed from a memory-mapped snapshot.
    pub memory_bytes: usize,
    /// Portion of `memory_bytes` borrowed zero-copy from a memory-mapped
    /// snapshot rather than heap-allocated (0 for cold-built caches; the
    /// remainder, `memory_bytes - mapped_bytes`, is resident).
    pub mapped_bytes: usize,
    /// Wall-clock time spent extending the shared coverage index during
    /// this solve (zero when everything was already indexed — the
    /// extend-never-rebuild payoff).
    pub index_time: Duration,
    /// RR-sets in the shared cache that were restored from a persisted
    /// snapshot rather than generated in this process (0 for cold-built
    /// caches; stamped by the `Workbench`, see `rmsa-store`).
    pub loaded_from_snapshot: usize,
    /// Wall-clock the cache spent loading that snapshot (zero when no
    /// snapshot was loaded).
    pub snapshot_load_time: Duration,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
}

impl SolveReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: revenue ≈ {:.1}, seed cost {:.1}, {} seeds, {} RR-sets ({} new), {:.2?}",
            self.solver,
            self.revenue_estimate,
            self.seeding_cost,
            self.allocation.total_seeds(),
            self.rr.used,
            self.rr.generated,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let report = SolveReport {
            solver: "RMA".into(),
            allocation: Allocation::empty(2),
            revenue_estimate: 123.4,
            revenue_lower_bound: Some(100.0),
            seeding_cost: 8.0,
            beta: Some(0.2),
            lambda: Some(0.15),
            feasible: true,
            capped: false,
            iterations: 3,
            rr: RrAccounting {
                used: 1000,
                generated: 400,
                reused: 600,
                index_extended: 400,
                index_reused: 600,
            },
            memory_bytes: 1 << 20,
            mapped_bytes: 0,
            index_time: Duration::from_millis(1),
            loaded_from_snapshot: 0,
            snapshot_load_time: Duration::ZERO,
            elapsed: Duration::from_millis(12),
        };
        let s = report.summary();
        assert!(s.contains("RMA"));
        assert!(s.contains("123.4"));
        assert!(s.contains("400"));
    }
}
