//! The unified `Solver` API.
//!
//! Every algorithm in this crate — the paper's RMA and its one-batch
//! variant, `RM_with_Oracle` under exact/Monte-Carlo oracles, and the four
//! baselines of Aslay et al. — is exposed as an implementation of one trait:
//!
//! ```text
//! fn solve(&self, ctx: &SolveContext) -> Result<SolveReport, RmError>
//! ```
//!
//! A [`SolveContext`] bundles everything a solve needs: the graph, the
//! propagation model, the [`RmInstance`], and a handle to a shared
//! [`RrCache`]. Because the cache *extends* its RR-set collections instead
//! of regenerating them, running `h` solvers over `k` parameter points —
//! the shape of every experiment in the paper — pays the sampling cost once
//! per graph/model, not once per run.
//!
//! The facade crate (`rmsa`) builds on this trait with a `Workbench` that
//! owns graph + model + cache and drives registered solvers across sweeps.
//!
//! ```
//! use rmsa_core::problem::{Advertiser, RmInstance, SeedCosts};
//! use rmsa_core::solver::{Rma, SolveContext, Solver};
//! use rmsa_core::RmaConfig;
//! use rmsa_diffusion::{RrCache, RrStrategy, UniformIc};
//! use rmsa_graph::generators::celebrity_graph;
//!
//! let graph = celebrity_graph(4, 10);
//! let model = UniformIc::new(2, 0.3);
//! let instance = RmInstance::try_new(
//!     graph.num_nodes(),
//!     vec![
//!         Advertiser::try_new(15.0, 1.0).unwrap(),
//!         Advertiser::try_new(15.0, 1.5).unwrap(),
//!     ],
//!     SeedCosts::Shared(vec![1.0; graph.num_nodes()]),
//! )
//! .unwrap();
//! let cache = RrCache::new(graph.num_nodes(), RrStrategy::Standard, 1, 42);
//! let ctx = SolveContext::new(&graph, &model, &instance, &cache).unwrap();
//! let config = RmaConfig { epsilon: 0.1, max_rr_per_collection: 20_000, ..RmaConfig::default() };
//! let report = Rma::new(config).solve(&ctx).unwrap();
//! assert!(report.allocation.is_disjoint());
//! ```

mod report;
mod solvers;

pub use report::{RrAccounting, SolveReport};
pub use solvers::{CaGreedy, CsGreedy, OneBatch, OracleGreedy, OracleMode, Rma, TiCarm, TiCsrm};

use crate::error::RmError;
use crate::problem::RmInstance;
use rmsa_diffusion::{PropagationModel, RrCache, UniformRrSampler};
use rmsa_graph::DirectedGraph;

/// Everything a [`Solver`] needs for one run: problem data plus the shared
/// RR-set cache. Cheap to construct per instance; the expensive state (the
/// cache) lives outside and is reused across contexts.
pub struct SolveContext<'a> {
    /// The social graph.
    pub graph: &'a DirectedGraph,
    /// The propagation model (type-erased; all solvers are model-agnostic).
    pub model: &'a dyn PropagationModel,
    /// The RM problem instance (advertisers, budgets, seed costs).
    pub instance: &'a RmInstance,
    /// Shared, lazily-extendable RR-set cache.
    pub cache: &'a RrCache,
}

impl<'a> SolveContext<'a> {
    /// Assemble a context, validating that graph, model, instance, and
    /// cache agree on their dimensions.
    pub fn new(
        graph: &'a DirectedGraph,
        model: &'a dyn PropagationModel,
        instance: &'a RmInstance,
        cache: &'a RrCache,
    ) -> Result<Self, RmError> {
        if instance.num_nodes != graph.num_nodes() {
            return Err(RmError::DimensionMismatch {
                what: "instance nodes",
                expected: graph.num_nodes(),
                actual: instance.num_nodes,
            });
        }
        if model.num_ads() != instance.num_ads() {
            return Err(RmError::DimensionMismatch {
                what: "propagation model advertisers",
                expected: instance.num_ads(),
                actual: model.num_ads(),
            });
        }
        if cache.num_nodes() != graph.num_nodes() {
            return Err(RmError::DimensionMismatch {
                what: "cache nodes",
                expected: graph.num_nodes(),
                actual: cache.num_nodes(),
            });
        }
        Ok(SolveContext {
            graph,
            model,
            instance,
            cache,
        })
    }

    /// The uniform advertiser-proportional sampler of Section 4.2 for this
    /// instance's CPE values.
    pub fn sampler(&self) -> UniformRrSampler {
        UniformRrSampler::new(&self.instance.cpe_values())
    }

    /// Number of advertisers `h`.
    pub fn num_ads(&self) -> usize {
        self.instance.num_ads()
    }
}

/// A revenue-maximization algorithm under the unified API.
///
/// Implementations must be deterministic given their configuration and the
/// context (all randomness is seeded), and must return allocations that
/// satisfy the partition-matroid constraint.
pub trait Solver: Send + Sync {
    /// Display name used in reports and experiment output (e.g. `"RMA"`).
    fn name(&self) -> String;

    /// Run the algorithm on `ctx` and report the outcome.
    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError>;
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn solve(&self, ctx: &SolveContext<'_>) -> Result<SolveReport, RmError> {
        (**self).solve(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::{RrStrategy, UniformIc};
    use rmsa_graph::graph_from_edges;

    #[test]
    fn context_validates_dimensions() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let cache = RrCache::new(4, RrStrategy::Standard, 1, 1);
        let inst = RmInstance::try_new(
            4,
            vec![Advertiser::try_new(5.0, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0; 4]),
        )
        .unwrap();
        let good = UniformIc::new(1, 0.5);
        assert!(SolveContext::new(&g, &good, &inst, &cache).is_ok());

        let bad_model = UniformIc::new(3, 0.5);
        assert!(matches!(
            SolveContext::new(&g, &bad_model, &inst, &cache),
            Err(RmError::DimensionMismatch { .. })
        ));

        let bad_cache = RrCache::new(7, RrStrategy::Standard, 1, 1);
        assert!(matches!(
            SolveContext::new(&g, &good, &inst, &bad_cache),
            Err(RmError::DimensionMismatch { .. })
        ));

        let big_graph = graph_from_edges(9, &[(0, 1)]);
        assert!(matches!(
            SolveContext::new(&big_graph, &good, &inst, &cache),
            Err(RmError::DimensionMismatch { .. })
        ));
    }
}
