//! # rmsa-core
//!
//! Reference implementation of the revenue-maximization algorithms of
//! *"Efficient and Effective Algorithms for Revenue Maximization in Social
//! Advertising"* (SIGMOD 2021).
//!
//! The crate is organised around the paper's two settings:
//!
//! * **Oracle setting** ([`algorithms`]): `Greedy`, `ThresholdGreedy` +
//!   `Fill`, the binary-search driver `Search`, and the dispatcher
//!   `RM_with_Oracle`, all generic over the [`oracle::RevenueOracle`] trait.
//! * **Sampling setting** ([`sampling`]): the uniform RR-set revenue
//!   estimator, the Theorem-4.2 sample-size bounds, the one-batch algorithm
//!   and the progressive-sampling algorithm **RMA** (`RM_without_Oracle`)
//!   with `SeekUB`.
//!
//! [`baselines`] re-implements the competitors of Aslay et al. (CA-/CS-Greedy,
//! TI-CARM, TI-CSRM); [`evaluation`] measures final allocations on RR-sets
//! independent of any algorithm; [`problem`] holds the instance/allocation
//! types; [`approx`] exposes the paper's approximation ratios.
//!
//! ## Quick example
//!
//! ```
//! use rmsa_core::problem::{Advertiser, RmInstance, SeedCosts};
//! use rmsa_core::sampling::{rm_without_oracle, RmaConfig};
//! use rmsa_diffusion::UniformIc;
//! use rmsa_graph::generators::celebrity_graph;
//!
//! let graph = celebrity_graph(4, 10);
//! let model = UniformIc::new(2, 0.3);
//! let instance = RmInstance::new(
//!     graph.num_nodes(),
//!     vec![Advertiser::new(15.0, 1.0), Advertiser::new(15.0, 1.5)],
//!     SeedCosts::Shared(vec![1.0; graph.num_nodes()]),
//! );
//! let config = RmaConfig { max_rr_per_collection: 20_000, ..RmaConfig::default() };
//! let result = rm_without_oracle(&graph, &model, &instance, &config);
//! assert!(result.allocation.is_disjoint());
//! ```

pub mod algorithms;
pub mod approx;
pub mod baselines;
pub mod evaluation;
pub mod oracle;
pub mod problem;
pub mod sampling;
mod util;

pub use algorithms::{fill, greedy_single, rm_with_oracle, search, threshold_greedy};
pub use approx::{b_min_for, lambda};
pub use evaluation::{EvaluationReport, IndependentEvaluator};
pub use oracle::{marginal_rate, ExactRevenueOracle, McRevenueOracle, RevenueOracle, SeedState};
pub use problem::{Advertiser, Allocation, RmInstance, SeedCosts};
pub use sampling::{one_batch, rm_without_oracle, RmaConfig, RmaResult, RrRevenueEstimator};
