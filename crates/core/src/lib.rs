//! # rmsa-core
//!
//! Reference implementation of the revenue-maximization algorithms of
//! *"Efficient and Effective Algorithms for Revenue Maximization in Social
//! Advertising"* (SIGMOD 2021).
//!
//! The crate is organised around the paper's two settings:
//!
//! * **Oracle setting** ([`algorithms`]): `Greedy`, `ThresholdGreedy` +
//!   `Fill`, the binary-search driver `Search`, and the dispatcher
//!   `RM_with_Oracle`, all generic over the [`oracle::RevenueOracle`] trait.
//! * **Sampling setting** ([`sampling`]): the uniform RR-set revenue
//!   estimator, the Theorem-4.2 sample-size bounds, the one-batch algorithm
//!   and the progressive-sampling algorithm **RMA** (`RM_without_Oracle`)
//!   with `SeekUB`.
//!
//! [`baselines`] re-implements the competitors of Aslay et al. (CA-/CS-Greedy,
//! TI-CARM, TI-CSRM); [`evaluation`] measures final allocations on RR-sets
//! independent of any algorithm; [`problem`] holds the instance/allocation
//! types; [`approx`] exposes the paper's approximation ratios; [`error`]
//! the unified [`RmError`].
//!
//! Every algorithm is exposed through the unified [`solver::Solver`] trait:
//! a [`solver::SolveContext`] bundles graph, model, instance, and a shared
//! [`rmsa_diffusion::RrCache`], and each solve returns a
//! [`solver::SolveReport`]. See `DESIGN.md` for the paper → module map and
//! the migration table from the deprecated free functions.
//!
//! ## Quick example
//!
//! ```
//! use rmsa_core::problem::{Advertiser, RmInstance, SeedCosts};
//! use rmsa_core::solver::{Rma, SolveContext, Solver};
//! use rmsa_core::RmaConfig;
//! use rmsa_diffusion::{RrCache, RrStrategy, UniformIc};
//! use rmsa_graph::generators::celebrity_graph;
//!
//! let graph = celebrity_graph(4, 10);
//! let model = UniformIc::new(2, 0.3);
//! let instance = RmInstance::try_new(
//!     graph.num_nodes(),
//!     vec![Advertiser::try_new(15.0, 1.0).unwrap(), Advertiser::try_new(15.0, 1.5).unwrap()],
//!     SeedCosts::Shared(vec![1.0; graph.num_nodes()]),
//! ).unwrap();
//! let cache = RrCache::new(graph.num_nodes(), RrStrategy::Standard, 1, 7);
//! let ctx = SolveContext::new(&graph, &model, &instance, &cache).unwrap();
//! let config = RmaConfig { epsilon: 0.1, max_rr_per_collection: 20_000, ..RmaConfig::default() };
//! let report = Rma::new(config).solve(&ctx).unwrap();
//! assert!(report.allocation.is_disjoint());
//! ```

pub mod algorithms;
pub mod approx;
pub mod baselines;
pub mod error;
pub mod evaluation;
pub mod oracle;
pub mod problem;
pub mod sampling;
pub mod solver;
pub mod threads;
mod util;

pub use algorithms::{fill, greedy_single, rm_with_oracle, search, threshold_greedy};
pub use approx::{b_min_for, lambda};
pub use error::RmError;
pub use evaluation::{EvaluationReport, IndependentEvaluator};
pub use oracle::{marginal_rate, ExactRevenueOracle, McRevenueOracle, RevenueOracle, SeedState};
pub use problem::{Advertiser, Allocation, RmInstance, SeedCosts};
pub use sampling::{RmaConfig, RmaResult, RrRevenueEstimator};
pub use solver::{
    CaGreedy, CsGreedy, OneBatch, OracleGreedy, OracleMode, Rma, RrAccounting, SolveContext,
    SolveReport, Solver, TiCarm, TiCsrm,
};
pub use threads::default_num_threads;

#[allow(deprecated)]
pub use sampling::{one_batch, rm_without_oracle};
