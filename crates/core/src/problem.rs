//! The Revenue Maximization (RM) problem instance and allocations.
//!
//! An instance bundles everything the algorithms need besides the influence
//! oracle itself: the advertisers (budget `B_i`, cost-per-engagement
//! `cpe(i)`), and the seed-incentive costs `c_i(u)` for every `(node, ad)`
//! pair. Definition 2.1 of the paper: maximise `Σ_i π_i(S_i)` subject to
//! `π_i(S_i) + c_i(S_i) ≤ B_i` for every advertiser and `S_i ∩ S_j = ∅`.

use crate::error::RmError;
use rmsa_diffusion::AdId;
use rmsa_graph::NodeId;
use serde::{Deserialize, Serialize};

/// One advertiser's contract with the host.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Advertiser {
    /// Total budget `B_i` covering both engagements and seed incentives.
    pub budget: f64,
    /// Cost-per-engagement `cpe(i)` the advertiser pays the host.
    pub cpe: f64,
}

impl Advertiser {
    /// Construct an advertiser, validating that budget and CPE are positive
    /// and finite.
    pub fn try_new(budget: f64, cpe: f64) -> Result<Self, RmError> {
        if !(budget > 0.0 && budget.is_finite()) {
            return Err(RmError::invalid_parameter("budget", budget, "(0, ∞)"));
        }
        if !(cpe > 0.0 && cpe.is_finite()) {
            return Err(RmError::invalid_parameter("cpe", cpe, "(0, ∞)"));
        }
        Ok(Advertiser { budget, cpe })
    }

    /// Construct an advertiser; panics on non-positive budget or CPE.
    #[deprecated(
        since = "0.2.0",
        note = "use `Advertiser::try_new` and handle `RmError`"
    )]
    pub fn new(budget: f64, cpe: f64) -> Self {
        match Self::try_new(budget, cpe) {
            Ok(a) => a,
            Err(RmError::InvalidParameter { name: "budget", .. }) => {
                // lint: allow(R1, reason = "deprecated constructor documented to panic; try_new is the fallible path")
                panic!("budget must be positive")
            }
            // lint: allow(R1, reason = "deprecated constructor documented to panic; try_new is the fallible path")
            Err(_) => panic!("cpe must be positive"),
        }
    }
}

/// Seed-incentive costs `c_i(u)`.
///
/// The scalability experiments use the same cost vector for every advertiser
/// (Weighted-Cascade probabilities are ad-independent, hence so are singleton
/// spreads); the TIC experiments use genuinely per-ad costs. The `Shared`
/// variant avoids an `h × n` blow-up in the former case.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SeedCosts {
    /// One cost vector shared by every advertiser.
    Shared(Vec<f64>),
    /// One cost vector per advertiser (`h` rows of length `n`).
    PerAd(Vec<Vec<f64>>),
}

impl SeedCosts {
    /// Cost of seeding `node` for advertiser `ad`.
    #[inline]
    pub fn cost(&self, ad: AdId, node: NodeId) -> f64 {
        match self {
            SeedCosts::Shared(v) => v[node as usize],
            SeedCosts::PerAd(rows) => rows[ad][node as usize],
        }
    }

    /// Number of nodes covered by the cost table.
    pub fn num_nodes(&self) -> usize {
        match self {
            SeedCosts::Shared(v) => v.len(),
            SeedCosts::PerAd(rows) => rows.first().map_or(0, |r| r.len()),
        }
    }
}

/// A complete RM problem instance (graph and influence model live in the
/// oracle, which is passed to the algorithms separately).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RmInstance {
    /// Number of nodes `n` in the underlying graph.
    pub num_nodes: usize,
    /// The advertisers `1..h`.
    pub advertisers: Vec<Advertiser>,
    /// Seed-incentive costs.
    pub costs: SeedCosts,
}

impl RmInstance {
    /// Create an instance, validating dimensions: the cost table must cover
    /// every node and, for [`SeedCosts::PerAd`], carry exactly one row per
    /// advertiser.
    pub fn try_new(
        num_nodes: usize,
        advertisers: Vec<Advertiser>,
        costs: SeedCosts,
    ) -> Result<Self, RmError> {
        if advertisers.is_empty() {
            return Err(RmError::NoAdvertisers);
        }
        if costs.num_nodes() != num_nodes {
            return Err(RmError::DimensionMismatch {
                what: "cost table nodes",
                expected: num_nodes,
                actual: costs.num_nodes(),
            });
        }
        if let SeedCosts::PerAd(rows) = &costs {
            if rows.len() != advertisers.len() {
                return Err(RmError::DimensionMismatch {
                    what: "per-ad cost rows",
                    expected: advertisers.len(),
                    actual: rows.len(),
                });
            }
            if let Some(row) = rows.iter().find(|row| row.len() != num_nodes) {
                return Err(RmError::DimensionMismatch {
                    what: "per-ad cost row nodes",
                    expected: num_nodes,
                    actual: row.len(),
                });
            }
        }
        Ok(RmInstance {
            num_nodes,
            advertisers,
            costs,
        })
    }

    /// Create an instance; panics on dimension mismatches.
    #[deprecated(
        since = "0.2.0",
        note = "use `RmInstance::try_new` and handle `RmError`"
    )]
    pub fn new(num_nodes: usize, advertisers: Vec<Advertiser>, costs: SeedCosts) -> Self {
        match Self::try_new(num_nodes, advertisers, costs) {
            Ok(inst) => inst,
            // lint: allow(R1, reason = "deprecated constructor documented to panic; try_new is the fallible path")
            Err(RmError::NoAdvertisers) => panic!("at least one advertiser required"),
            Err(RmError::DimensionMismatch {
                what: "per-ad cost rows",
                ..
                // lint: allow(R1, reason = "deprecated constructor documented to panic; try_new is the fallible path")
            }) => panic!("one cost row per advertiser"),
            // lint: allow(R1, reason = "deprecated constructor documented to panic; try_new is the fallible path")
            Err(_) => panic!("cost table does not cover every node"),
        }
    }

    /// Number of advertisers `h`.
    #[inline]
    pub fn num_ads(&self) -> usize {
        self.advertisers.len()
    }

    /// Budget `B_i`.
    #[inline]
    pub fn budget(&self, ad: AdId) -> f64 {
        self.advertisers[ad].budget
    }

    /// Cost-per-engagement `cpe(i)`.
    #[inline]
    pub fn cpe(&self, ad: AdId) -> f64 {
        self.advertisers[ad].cpe
    }

    /// Seed cost `c_i(u)`.
    #[inline]
    pub fn cost(&self, ad: AdId, node: NodeId) -> f64 {
        self.costs.cost(ad, node)
    }

    /// Total seed cost `c_i(S)` of a set.
    pub fn set_cost(&self, ad: AdId, seeds: &[NodeId]) -> f64 {
        seeds.iter().map(|&u| self.cost(ad, u)).sum()
    }

    /// `Γ = Σ_i cpe(i)`.
    pub fn gamma(&self) -> f64 {
        self.advertisers.iter().map(|a| a.cpe).sum()
    }

    /// Smallest advertiser budget `B_min`.
    pub fn min_budget(&self) -> f64 {
        self.advertisers
            .iter()
            .map(|a| a.budget)
            .fold(f64::INFINITY, f64::min)
    }

    /// All CPE values in advertiser order.
    pub fn cpe_values(&self) -> Vec<f64> {
        self.advertisers.iter().map(|a| a.cpe).collect()
    }

    /// Return a copy of the instance with every budget multiplied by
    /// `factor` (used by the sampling algorithms, which internally run the
    /// oracle algorithms with budgets `(1 + ϱ/2) B_i`).
    pub fn with_scaled_budgets(&self, factor: f64) -> Self {
        let mut clone = self.clone();
        for a in &mut clone.advertisers {
            a.budget *= factor;
        }
        clone
    }

    /// `μ_i`: the largest number of nodes advertiser `ad` could possibly
    /// seed without the *seed costs alone* exceeding `budget_cap`. Used by
    /// the sample-size bounds of Theorem 4.2.
    pub fn max_seeds_within(&self, ad: AdId, budget_cap: f64) -> usize {
        let mut costs: Vec<f64> = (0..self.num_nodes as NodeId)
            .map(|u| self.cost(ad, u))
            .collect();
        // Costs are validated finite at construction; total_cmp orders any
        // float either way.
        costs.sort_by(|a, b| a.total_cmp(b));
        let mut total = 0.0;
        let mut count = 0usize;
        for c in costs {
            total += c;
            if total > budget_cap {
                break;
            }
            count += 1;
        }
        count.max(1)
    }
}

/// An allocation `S⃗ = (S_1, …, S_h)`: one seed set per advertiser.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Seed set per advertiser, in advertiser order.
    pub seed_sets: Vec<Vec<NodeId>>,
}

impl Allocation {
    /// An empty allocation for `h` advertisers.
    pub fn empty(num_ads: usize) -> Self {
        Allocation {
            seed_sets: vec![Vec::new(); num_ads],
        }
    }

    /// Number of advertisers.
    pub fn num_ads(&self) -> usize {
        self.seed_sets.len()
    }

    /// Seed set of advertiser `ad`.
    pub fn seeds(&self, ad: AdId) -> &[NodeId] {
        &self.seed_sets[ad]
    }

    /// Total number of seeds across all advertisers.
    pub fn total_seeds(&self) -> usize {
        self.seed_sets.iter().map(|s| s.len()).sum()
    }

    /// True when no advertiser has any seed.
    pub fn is_empty(&self) -> bool {
        self.seed_sets.iter().all(|s| s.is_empty())
    }

    /// Total seed-incentive cost `Σ_i c_i(S_i)` under `instance`.
    pub fn total_cost(&self, instance: &RmInstance) -> f64 {
        self.seed_sets
            .iter()
            .enumerate()
            .map(|(i, s)| instance.set_cost(i, s))
            .sum()
    }

    /// Check the partition-matroid constraint: no node is seeded for two
    /// different advertisers and no seed set contains duplicates.
    pub fn is_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for set in &self.seed_sets {
            for &u in set {
                if !seen.insert(u) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> RmInstance {
        RmInstance::try_new(
            4,
            vec![
                Advertiser::try_new(10.0, 1.0).unwrap(),
                Advertiser::try_new(20.0, 2.0).unwrap(),
            ],
            SeedCosts::PerAd(vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 0.5, 0.5, 0.5]]),
        )
        .unwrap()
    }

    #[test]
    fn accessors_return_expected_values() {
        let inst = small_instance();
        assert_eq!(inst.num_ads(), 2);
        assert_eq!(inst.budget(1), 20.0);
        assert_eq!(inst.cpe(0), 1.0);
        assert_eq!(inst.cost(0, 2), 3.0);
        assert_eq!(inst.cost(1, 2), 0.5);
        assert_eq!(inst.gamma(), 3.0);
        assert_eq!(inst.min_budget(), 10.0);
        assert_eq!(inst.set_cost(0, &[0, 3]), 5.0);
    }

    #[test]
    fn shared_costs_apply_to_every_ad() {
        let inst = RmInstance::try_new(
            3,
            vec![
                Advertiser::try_new(5.0, 1.0).unwrap(),
                Advertiser::try_new(5.0, 1.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0, 2.0, 3.0]),
        )
        .unwrap();
        assert_eq!(inst.cost(0, 1), inst.cost(1, 1));
    }

    #[test]
    fn scaled_budgets_only_change_budgets() {
        let inst = small_instance();
        let scaled = inst.with_scaled_budgets(1.5);
        assert_eq!(scaled.budget(0), 15.0);
        assert_eq!(scaled.budget(1), 30.0);
        assert_eq!(scaled.cpe(0), inst.cpe(0));
        assert_eq!(scaled.cost(0, 1), inst.cost(0, 1));
    }

    #[test]
    fn max_seeds_within_counts_cheapest_prefix() {
        let inst = small_instance();
        // Ad 0 costs sorted: 1,2,3,4 — budget cap 6 allows {1,2,3}.
        assert_eq!(inst.max_seeds_within(0, 6.0), 3);
        // Ad 1: four nodes at 0.5 each fit in 20.
        assert_eq!(inst.max_seeds_within(1, 20.0), 4);
        // Even a zero cap reports at least one node.
        assert_eq!(inst.max_seeds_within(0, 0.0), 1);
    }

    #[test]
    fn allocation_cost_and_disjointness() {
        let inst = small_instance();
        let mut alloc = Allocation::empty(2);
        alloc.seed_sets[0] = vec![0, 1];
        alloc.seed_sets[1] = vec![2];
        assert_eq!(alloc.total_seeds(), 3);
        assert!((alloc.total_cost(&inst) - 3.5).abs() < 1e-12);
        assert!(alloc.is_disjoint());
        alloc.seed_sets[1].push(0);
        assert!(!alloc.is_disjoint());
    }

    #[test]
    fn mismatched_cost_table_is_rejected() {
        let err = RmInstance::try_new(
            5,
            vec![Advertiser::try_new(1.0, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0, 1.0]),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RmError::DimensionMismatch {
                what: "cost table nodes",
                expected: 5,
                actual: 2,
            }
        );
    }

    #[test]
    fn nonpositive_budget_rejected() {
        assert!(matches!(
            Advertiser::try_new(0.0, 1.0),
            Err(RmError::InvalidParameter { name: "budget", .. })
        ));
        assert!(matches!(
            Advertiser::try_new(1.0, f64::NAN),
            Err(RmError::InvalidParameter { name: "cpe", .. })
        ));
    }

    #[test]
    fn per_ad_row_count_and_row_length_are_validated() {
        let ads = vec![
            Advertiser::try_new(1.0, 1.0).unwrap(),
            Advertiser::try_new(1.0, 1.0).unwrap(),
        ];
        let err = RmInstance::try_new(2, ads.clone(), SeedCosts::PerAd(vec![vec![1.0, 1.0]]))
            .unwrap_err();
        assert!(matches!(
            err,
            RmError::DimensionMismatch {
                what: "per-ad cost rows",
                ..
            }
        ));
        let err = RmInstance::try_new(2, ads, SeedCosts::PerAd(vec![vec![1.0, 1.0], vec![1.0]]))
            .unwrap_err();
        assert!(matches!(err, RmError::DimensionMismatch { .. }));
        assert!(matches!(
            RmInstance::try_new(0, Vec::new(), SeedCosts::Shared(Vec::new())),
            Err(RmError::NoAdvertisers)
        ));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "budget must be positive")]
    fn deprecated_constructor_still_panics() {
        Advertiser::new(0.0, 1.0);
    }
}
