//! Sampling-mode baselines of Aslay et al. [5]: TI-CARM and TI-CSRM.
//!
//! The original algorithms wrap the TIM influence-maximization machinery:
//! they keep *one RR-set collection per advertiser*, size each collection
//! with a TIM-style `θ_i ∝ n (k_i ln n + ln(1/δ)) / (ε² · OPT_i)` bound
//! (where `k_i` is an estimate of the largest seed set the budget could
//! buy), and enforce budget feasibility through *upper bounds* on the
//! estimated spread — which is exactly what makes them conservative and
//! memory-hungry when `ε` shrinks (Fig. 4 of the paper).
//!
//! This implementation reproduces that structure with one simplification,
//! recorded in `DESIGN.md`: the TIM `KPT*` estimation of `OPT_i` is replaced
//! by a pilot-sample greedy lower bound, which preserves the `1/ε²` scaling
//! of the sample size and the conservative budget behaviour without
//! re-implementing TIM's multi-phase estimator verbatim.

use crate::error::RmError;
use crate::oracle::marginal_rate;
use crate::problem::{Allocation, RmInstance};
use crate::util::LazyQueue;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_diffusion::{PropagationModel, RrGenerator, RrSet, RrStrategy};
use rmsa_graph::{DirectedGraph, NodeId};
use std::time::{Duration, Instant};

/// Which selection rule the TI baseline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TiRule {
    /// TI-CARM: marginal gain, advertiser saturates at first violation.
    CostAgnostic,
    /// TI-CSRM: marginal rate, infeasible elements are skipped.
    CostSensitive,
}

/// Configuration shared by TI-CARM and TI-CSRM.
///
/// Request-facing: carries serde derives so serving layers can embed it
/// in wire/report schemas.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TiConfig {
    /// Estimation accuracy ε of Eq. (5); the paper uses 0.1–0.3.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// RR-set generation strategy.
    pub strategy: RrStrategy,
    /// Pilot-sample size per advertiser used to lower-bound `OPT_i`.
    pub pilot_sets: usize,
    /// Practical cap on RR-sets per advertiser.
    pub max_rr_per_ad: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TiConfig {
    fn default() -> Self {
        TiConfig {
            epsilon: 0.1,
            delta: 0.001,
            strategy: RrStrategy::Standard,
            pilot_sets: 4_096,
            max_rr_per_ad: 2_000_000,
            seed: 0xBEEF,
        }
    }
}

impl TiConfig {
    /// Validate parameter ranges: ε > 0, δ ∈ (0, 1), positive sample sizes.
    pub fn validate(&self) -> Result<(), RmError> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(RmError::invalid_parameter(
                "epsilon",
                self.epsilon,
                "(0, ∞)",
            ));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(RmError::invalid_parameter("delta", self.delta, "(0, 1)"));
        }
        if self.pilot_sets == 0 {
            return Err(RmError::invalid_parameter("pilot_sets", 0.0, "[1, ∞)"));
        }
        if self.max_rr_per_ad == 0 {
            return Err(RmError::invalid_parameter("max_rr_per_ad", 0.0, "[1, ∞)"));
        }
        Ok(())
    }
}

/// Result of a TI baseline run, with the accounting the experiments report.
#[derive(Clone, Debug)]
pub struct TiResult {
    /// Selected allocation.
    pub allocation: Allocation,
    /// The baseline's own estimate of the allocation's revenue on its
    /// per-ad collections.
    pub revenue_estimate: f64,
    /// Total RR-sets generated across all advertisers (pilot included).
    pub total_rr_sets: usize,
    /// Whether any advertiser's TIM-style sample size was clipped by
    /// `max_rr_per_ad`.
    pub capped: bool,
    /// Approximate memory footprint of the per-ad collections in bytes.
    pub memory_bytes: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Per-advertiser RR-set coverage state (TI baselines do not use the uniform
/// advertiser-proportional sampler; each advertiser has its own collection
/// and its own `n / |R_i|` scaling).
struct PerAdSample {
    node_to_rr: Vec<Vec<u32>>,
    covered: Vec<bool>,
}

impl PerAdSample {
    fn build(num_nodes: usize, sets: &[RrSet]) -> Self {
        let mut node_to_rr: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (id, rr) in sets.iter().enumerate() {
            for &u in &rr.nodes {
                node_to_rr[u as usize].push(id as u32);
            }
        }
        PerAdSample {
            node_to_rr,
            covered: vec![false; sets.len()],
        }
    }

    fn marginal_count(&self, u: NodeId) -> usize {
        self.node_to_rr[u as usize]
            .iter()
            .filter(|&&rr| !self.covered[rr as usize])
            .count()
    }

    fn commit(&mut self, u: NodeId) -> usize {
        let mut newly = 0;
        for &rr in &self.node_to_rr[u as usize] {
            if !self.covered[rr as usize] {
                self.covered[rr as usize] = true;
                newly += 1;
            }
        }
        newly
    }
}

/// Greedy top-`k` coverage on a pilot sample, returning the covered count —
/// the pilot lower bound on `OPT_i`'s coverage.
fn pilot_greedy_coverage(num_nodes: usize, sets: &[RrSet], k: usize) -> usize {
    let mut sample = PerAdSample::build(num_nodes, sets);
    let mut total = 0usize;
    for _ in 0..k {
        let best = (0..num_nodes as NodeId)
            .map(|u| (sample.marginal_count(u), u))
            .max()
            .unwrap_or((0, 0));
        if best.0 == 0 {
            break;
        }
        total += sample.commit(best.1);
    }
    total
}

/// Run TI-CARM (`rule = CostAgnostic`) or TI-CSRM (`rule = CostSensitive`).
///
/// The TI baselines keep one RR-set collection *per advertiser* with TIM's
/// per-ad scaling, so they do not share the uniform-sampler [`rmsa_diffusion::RrCache`]
/// used by RMA; their sampling cost is part of what the paper measures
/// against.
pub fn ti_baseline<M: PropagationModel + ?Sized>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &TiConfig,
    rule: TiRule,
) -> Result<TiResult, RmError> {
    let start = Instant::now();
    let h = instance.num_ads();
    let n = instance.num_nodes;
    if model.num_ads() != h {
        return Err(RmError::DimensionMismatch {
            what: "propagation model advertisers",
            expected: h,
            actual: model.num_ads(),
        });
    }
    config.validate()?;
    let mut rng = Pcg64Mcg::seed_from_u64(config.seed);
    let mut gen = RrGenerator::new(n, config.strategy);

    // Phase 1: per-advertiser sample-size estimation and RR generation.
    let mut per_ad_sets: Vec<Vec<RrSet>> = Vec::with_capacity(h);
    let mut total_rr = 0usize;
    let mut memory = 0usize;
    let mut capped = false;
    // The upper-bound slack used in the conservative feasibility check.
    let q = (n as f64 * h as f64 / config.delta).ln();
    for ad in 0..h {
        // Latent seed-set size: the largest set the budget could buy.
        let k_i = instance.max_seeds_within(ad, instance.budget(ad));
        // Pilot sample to lower-bound OPT_i.
        let pilot: Vec<RrSet> = (0..config.pilot_sets.min(config.max_rr_per_ad))
            .map(|_| gen.generate(graph, &model, ad, &mut rng))
            .collect();
        let pilot_cov = pilot_greedy_coverage(n, &pilot, k_i).max(1);
        let opt_lb = (n as f64 * pilot_cov as f64 / pilot.len().max(1) as f64).max(1.0);
        // TIM-style sample size with ln C(n, k) ≤ k ln n.
        let theta = (8.0 + 2.0 * config.epsilon)
            * n as f64
            * ((2.0 * h as f64 / config.delta).ln() + k_i as f64 * (n as f64).ln())
            / (config.epsilon * config.epsilon * opt_lb);
        let theta_raw = (theta.ceil() as usize).max(pilot.len());
        let theta = theta_raw.min(config.max_rr_per_ad);
        capped |= theta < theta_raw;
        let mut sets = pilot;
        while sets.len() < theta {
            sets.push(gen.generate(graph, &model, ad, &mut rng));
        }
        total_rr += sets.len();
        memory += sets.iter().map(|s| s.memory_bytes()).sum::<usize>();
        per_ad_sets.push(sets);
    }

    // Phase 2: greedy selection with conservative (upper-bounded) budget
    // feasibility, mirroring CA-/CS-Greedy.
    let mut samples: Vec<PerAdSample> = per_ad_sets
        .iter()
        .map(|sets| PerAdSample::build(n, sets))
        .collect();
    let scale: Vec<f64> = (0..h)
        .map(|ad| {
            let r = per_ad_sets[ad].len();
            if r == 0 {
                0.0
            } else {
                instance.cpe(ad) * n as f64 / r as f64
            }
        })
        .collect();

    let mut versions = vec![0u32; h];
    let mut cost_sums = vec![0.0f64; h];
    let mut covered_counts = vec![0usize; h];
    let mut saturated = vec![false; h];
    let mut assigned = vec![false; n];
    let mut seed_sets: Vec<Vec<NodeId>> = vec![Vec::new(); h];

    let mut queue = LazyQueue::with_capacity(n * h);
    for ad in 0..h {
        for v in 0..n as NodeId {
            let gain = samples[ad].marginal_count(v) as f64 * scale[ad];
            let cost = instance.cost(ad, v);
            if cost + gain > instance.budget(ad) {
                continue;
            }
            let key = match rule {
                TiRule::CostAgnostic => gain,
                TiRule::CostSensitive => marginal_rate(gain, cost),
            };
            queue.push(key, v, ad, 0);
        }
    }

    while let Some(entry) = queue.pop() {
        let ad = entry.ad;
        if saturated[ad] || assigned[entry.node as usize] {
            continue;
        }
        let marg_count = samples[ad].marginal_count(entry.node) as f64;
        let gain = marg_count * scale[ad];
        let cost = instance.cost(ad, entry.node);
        let key = match rule {
            TiRule::CostAgnostic => gain,
            TiRule::CostSensitive => marginal_rate(gain, cost),
        };
        if entry.version != versions[ad] {
            queue.push(key, entry.node, ad, versions[ad]);
            continue;
        }
        // Conservative feasibility: compare the *upper bound* of the revenue
        // of S_i ∪ {u} (estimate plus a martingale confidence term) against
        // the budget, as TI-CARM/TI-CSRM do.
        let new_cov = covered_counts[ad] as f64 + marg_count;
        let ub_revenue =
            (new_cov + (2.0 * q * new_cov).sqrt() + q) * scale[ad].max(f64::MIN_POSITIVE);
        if cost_sums[ad] + cost + ub_revenue <= instance.budget(ad) {
            covered_counts[ad] += samples[ad].commit(entry.node);
            cost_sums[ad] += cost;
            versions[ad] += 1;
            assigned[entry.node as usize] = true;
            seed_sets[ad].push(entry.node);
        } else if rule == TiRule::CostAgnostic {
            saturated[ad] = true;
        }
    }

    let revenue_estimate = (0..h).map(|ad| covered_counts[ad] as f64 * scale[ad]).sum();
    Ok(TiResult {
        allocation: Allocation { seed_sets },
        revenue_estimate,
        total_rr_sets: total_rr,
        capped,
        memory_bytes: memory,
        elapsed: start.elapsed(),
    })
}

/// TI-CARM of [5].
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::TiCarm` with a `SolveContext`"
)]
#[allow(clippy::expect_used)]
pub fn ti_carm<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &TiConfig,
) -> TiResult {
    ti_baseline(graph, model, instance, config, TiRule::CostAgnostic)
        // lint: allow(R1, reason = "deprecated pre-0.2 API whose documented contract is to panic on invalid configuration")
        .expect("invalid TI configuration")
}

/// TI-CSRM of [5].
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::TiCsrm` with a `SolveContext`"
)]
#[allow(clippy::expect_used)]
pub fn ti_csrm<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &TiConfig,
) -> TiResult {
    ti_baseline(graph, model, instance, config, TiRule::CostSensitive)
        // lint: allow(R1, reason = "deprecated pre-0.2 API whose documented contract is to panic on invalid configuration")
        .expect("invalid TI configuration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::generators::celebrity_graph;

    fn quick_config() -> TiConfig {
        TiConfig {
            epsilon: 0.3,
            delta: 0.1,
            strategy: RrStrategy::Standard,
            pilot_sets: 256,
            max_rr_per_ad: 4_000,
            seed: 5,
        }
    }

    fn setup(h: usize) -> (DirectedGraph, UniformIc, RmInstance) {
        let g = celebrity_graph(5, 6);
        let m = UniformIc::new(h, 0.5);
        let n = g.num_nodes();
        let inst = RmInstance::try_new(
            n,
            (0..h)
                .map(|_| Advertiser::try_new(10.0, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; n]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn ti_baselines_return_disjoint_allocations() {
        let (g, m, inst) = setup(3);
        let cfg = quick_config();
        let carm = ti_baseline(&g, &m, &inst, &cfg, TiRule::CostAgnostic).unwrap();
        let csrm = ti_baseline(&g, &m, &inst, &cfg, TiRule::CostSensitive).unwrap();
        assert!(carm.allocation.is_disjoint());
        assert!(csrm.allocation.is_disjoint());
        assert!(carm.total_rr_sets > 0);
        assert!(csrm.memory_bytes > 0);
    }

    #[test]
    fn seed_costs_alone_respect_the_budget() {
        let (g, m, inst) = setup(2);
        let res = ti_baseline(&g, &m, &inst, &quick_config(), TiRule::CostSensitive).unwrap();
        for ad in 0..2 {
            let cost = inst.set_cost(ad, res.allocation.seeds(ad));
            assert!(cost <= inst.budget(ad) + 1e-9);
        }
    }

    #[test]
    fn smaller_epsilon_generates_more_rr_sets() {
        let (g, m, inst) = setup(2);
        let mut cfg = quick_config();
        cfg.max_rr_per_ad = 1_000_000;
        cfg.epsilon = 0.3;
        let coarse = ti_baseline(&g, &m, &inst, &cfg, TiRule::CostSensitive).unwrap();
        cfg.epsilon = 0.1;
        let fine = ti_baseline(&g, &m, &inst, &cfg, TiRule::CostSensitive).unwrap();
        assert!(
            fine.total_rr_sets > coarse.total_rr_sets,
            "ε = 0.1 should need more RR-sets ({}) than ε = 0.3 ({})",
            fine.total_rr_sets,
            coarse.total_rr_sets
        );
    }

    #[test]
    fn conservative_feasibility_underutilizes_budget() {
        // The upper-bound check must keep the point-estimate spend strictly
        // below the budget (that is precisely the paper's criticism).
        let (g, m, inst) = setup(2);
        let res = ti_baseline(&g, &m, &inst, &quick_config(), TiRule::CostSensitive).unwrap();
        for ad in 0..2 {
            let seeds = res.allocation.seeds(ad);
            if seeds.is_empty() {
                continue;
            }
            let cost = inst.set_cost(ad, seeds);
            assert!(cost < inst.budget(ad));
        }
    }

    #[test]
    fn pilot_greedy_coverage_is_monotone_in_k() {
        let (g, m, _) = setup(1);
        let mut rng = Pcg64Mcg::seed_from_u64(1);
        let mut gen = RrGenerator::new(g.num_nodes(), RrStrategy::Standard);
        let sets: Vec<RrSet> = (0..500)
            .map(|_| gen.generate(&g, &m, 0, &mut rng))
            .collect();
        let c1 = pilot_greedy_coverage(g.num_nodes(), &sets, 1);
        let c3 = pilot_greedy_coverage(g.num_nodes(), &sets, 3);
        let c10 = pilot_greedy_coverage(g.num_nodes(), &sets, 10);
        assert!(c1 <= c3 && c3 <= c10);
        assert!(c10 <= 500);
    }
}
