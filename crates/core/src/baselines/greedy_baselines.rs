//! Oracle-mode baselines from Aslay et al. [5]: Cost-Agnostic Greedy
//! (CA-Greedy) and Cost-Sensitive Greedy (CS-Greedy).
//!
//! Both iterate over `(node, advertiser)` candidates; CA-Greedy always takes
//! the largest marginal *gain* and, when that element would overflow its
//! advertiser's budget, stops selecting for that advertiser entirely (which
//! is what makes it collapse under the super-linear incentive model in the
//! paper's Fig. 1). CS-Greedy takes the largest marginal *rate* and merely
//! skips infeasible elements, continuing with cheaper ones.

use crate::oracle::{marginal_rate, RevenueOracle, SeedState};
use crate::problem::{Allocation, RmInstance};
use crate::util::LazyQueue;
use rmsa_graph::NodeId;

/// Which greedy rule the baseline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineRule {
    /// Select by marginal gain; saturate an advertiser on first violation.
    CostAgnostic,
    /// Select by marginal rate; skip individual infeasible elements.
    CostSensitive,
}

/// Run CA-Greedy (rule = [`BaselineRule::CostAgnostic`]) or CS-Greedy
/// (rule = [`BaselineRule::CostSensitive`]) under an exact/estimated oracle.
pub fn baseline_greedy<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    rule: BaselineRule,
) -> Allocation {
    let h = instance.num_ads();
    let n = instance.num_nodes;
    let mut states: Vec<O::State> = (0..h).map(|i| oracle.new_state(i)).collect();
    let mut versions = vec![0u32; h];
    let mut cost_sums = vec![0.0f64; h];
    let mut saturated = vec![false; h];
    let mut assigned = vec![false; n];

    let mut queue = LazyQueue::with_capacity(n * h);
    for ad in 0..h {
        let budget = instance.budget(ad);
        for v in 0..n as NodeId {
            let rev = oracle.singleton_revenue(ad, v);
            let cost = instance.cost(ad, v);
            if cost + rev > budget {
                continue;
            }
            let key = match rule {
                BaselineRule::CostAgnostic => rev,
                BaselineRule::CostSensitive => marginal_rate(rev, cost),
            };
            queue.push(key, v, ad, 0);
        }
    }

    while let Some(entry) = queue.pop() {
        let ad = entry.ad;
        if saturated[ad] || assigned[entry.node as usize] {
            continue;
        }
        let gain = oracle.marginal_gain(&states[ad], entry.node);
        let cost = instance.cost(ad, entry.node);
        let key = match rule {
            BaselineRule::CostAgnostic => gain,
            BaselineRule::CostSensitive => marginal_rate(gain, cost),
        };
        if entry.version != versions[ad] {
            queue.push(key, entry.node, ad, versions[ad]);
            continue;
        }
        if cost_sums[ad] + cost + states[ad].revenue() + gain <= instance.budget(ad) {
            oracle.add_seed(&mut states[ad], entry.node);
            cost_sums[ad] += cost;
            versions[ad] += 1;
            assigned[entry.node as usize] = true;
        } else if rule == BaselineRule::CostAgnostic {
            saturated[ad] = true;
        }
    }

    Allocation {
        seed_sets: states.iter().map(|s| s.seeds().to_vec()).collect(),
    }
}

/// CA-Greedy of [5].
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::CaGreedy` with a `SolveContext`, \
            or call `baseline_greedy` directly with a custom oracle"
)]
pub fn ca_greedy<O: RevenueOracle>(instance: &RmInstance, oracle: &O) -> Allocation {
    baseline_greedy(instance, oracle, BaselineRule::CostAgnostic)
}

/// CS-Greedy of [5].
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::CsGreedy` with a `SolveContext`, \
            or call `baseline_greedy` directly with a custom oracle"
)]
pub fn cs_greedy<O: RevenueOracle>(instance: &RmInstance, oracle: &O) -> Allocation {
    baseline_greedy(instance, oracle, BaselineRule::CostSensitive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactRevenueOracle;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::graph_from_edges;

    /// The toy example of the paper's footnote 8: three independent nodes
    /// with singleton revenues 91, 50, 45 and costs 9, 3, 2 under budget
    /// 100. CA-Greedy takes the big node and exhausts the budget for
    /// revenue 91; CS-Greedy takes the two cheaper ones for revenue 95.
    fn footnote8_instance() -> (rmsa_graph::DirectedGraph, UniformIc, RmInstance) {
        // Build three disjoint stars with 90, 49 and 44 leaves.
        let mut edges = Vec::new();
        let mut next = 3u32;
        for (hub, leaves) in [(0u32, 90u32), (1, 49), (2, 44)] {
            for _ in 0..leaves {
                edges.push((hub, next));
                next += 1;
            }
        }
        let n = next as usize;
        let g = graph_from_edges(n, &edges);
        let m = UniformIc::new(1, 1.0);
        let mut costs = vec![1_000.0; n];
        costs[0] = 9.0;
        costs[1] = 3.0;
        costs[2] = 2.0;
        let inst = RmInstance::try_new(
            n,
            vec![Advertiser::try_new(100.0, 1.0).unwrap()],
            SeedCosts::Shared(costs),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn footnote_8_example_separates_the_two_rules() {
        let (g, m, inst) = footnote8_instance();
        // Deterministic propagation (p = 1): one cascade per query is exact.
        let o = crate::oracle::McRevenueOracle::new(&g, &m, &inst, 1, 0);
        let ca = baseline_greedy(&inst, &o, BaselineRule::CostAgnostic);
        let cs = baseline_greedy(&inst, &o, BaselineRule::CostSensitive);
        let ca_rev = o.allocation_revenue(&ca.seed_sets);
        let cs_rev = o.allocation_revenue(&cs.seed_sets);
        assert!((ca_rev - 91.0).abs() < 1e-9, "CA revenue {ca_rev}");
        assert!((cs_rev - 95.0).abs() < 1e-9, "CS revenue {cs_rev}");
        assert_eq!(ca.seed_sets[0], vec![0]);
        let mut cs_seeds = cs.seed_sets[0].clone();
        cs_seeds.sort_unstable();
        assert_eq!(cs_seeds, vec![1, 2]);
    }

    #[test]
    fn both_baselines_respect_budgets_and_disjointness() {
        let g = graph_from_edges(
            10,
            &[(0, 2), (0, 3), (0, 4), (1, 5), (1, 6), (7, 8), (8, 9)],
        );
        let m = UniformIc::new(2, 1.0);
        let inst = RmInstance::try_new(
            10,
            vec![
                Advertiser::try_new(7.0, 1.0).unwrap(),
                Advertiser::try_new(5.0, 1.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 10]),
        )
        .unwrap();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        for alloc in [
            baseline_greedy(&inst, &o, BaselineRule::CostAgnostic),
            baseline_greedy(&inst, &o, BaselineRule::CostSensitive),
        ] {
            assert!(alloc.is_disjoint());
            for ad in 0..2 {
                let seeds = alloc.seeds(ad);
                let spent = o.revenue(ad, seeds) + inst.set_cost(ad, seeds);
                assert!(spent <= inst.budget(ad) + 1e-9);
            }
        }
    }

    #[test]
    fn ca_greedy_saturates_after_first_violation() {
        // Hub worth 6 violates budget 5; CA then refuses everything else for
        // that advertiser even though cheap leaves would fit.
        let g = graph_from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let m = UniformIc::new(1, 1.0);
        let inst = RmInstance::try_new(
            7,
            vec![Advertiser::try_new(5.0, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0; 7]),
        )
        .unwrap();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let ca = baseline_greedy(&inst, &o, BaselineRule::CostAgnostic);
        let cs = baseline_greedy(&inst, &o, BaselineRule::CostSensitive);
        // The hub (revenue 6, cost 1) is singleton-infeasible and filtered;
        // first pop for CA is any leaf (revenue 1): feasible, selected. The
        // hub never being considered, CA and CS both end up with leaves, but
        // CS keeps adding until the budget is tight.
        assert!(o.allocation_revenue(&cs.seed_sets) >= o.allocation_revenue(&ca.seed_sets) - 1e-9);
    }

    #[test]
    fn empty_instance_edge_case() {
        let g = graph_from_edges(3, &[]);
        let m = UniformIc::new(1, 0.5);
        let inst = RmInstance::try_new(
            3,
            vec![Advertiser::try_new(0.5, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0; 3]),
        )
        .unwrap();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        // Every singleton costs 1 + 1 = 2 > 0.5, so nothing is selectable.
        let ca = baseline_greedy(&inst, &o, BaselineRule::CostAgnostic);
        assert_eq!(ca.total_seeds(), 0);
    }
}
