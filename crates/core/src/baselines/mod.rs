//! Baseline algorithms of Aslay et al. [5], reimplemented for comparison:
//! CA-/CS-Greedy in the oracle setting and TI-CARM/TI-CSRM in the sampling
//! setting.

pub mod greedy_baselines;
pub mod ti;

pub use greedy_baselines::{baseline_greedy, ca_greedy, cs_greedy, BaselineRule};
pub use ti::{ti_baseline, ti_carm, ti_csrm, TiConfig, TiResult, TiRule};
