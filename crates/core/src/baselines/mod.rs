//! Baseline algorithms of Aslay et al. [5], reimplemented for comparison:
//! CA-/CS-Greedy in the oracle setting and TI-CARM/TI-CSRM in the sampling
//! setting.

pub mod greedy_baselines;
pub mod ti;

pub use greedy_baselines::{baseline_greedy, BaselineRule};

#[allow(deprecated)]
pub use greedy_baselines::{ca_greedy, cs_greedy};
pub use ti::{ti_baseline, TiConfig, TiResult, TiRule};

#[allow(deprecated)]
pub use ti::{ti_carm, ti_csrm};
