//! Approximation ratios of the paper's algorithms (Eq. 1 / Theorem 3.5).

/// The instance-independent approximation ratio `λ` of `RM_with_Oracle`:
///
/// * `h = 1`      → `1/3`
/// * `h ∈ {2,3}`  → `1 / (2(h+1)(1+τ))`
/// * `h ≥ 4`      → `1 / ((h+6)(1+τ))`
///
/// `τ ∈ (0, 1)` is the binary-search accuracy knob of `Search`.
pub fn lambda(num_ads: usize, tau: f64) -> f64 {
    assert!(num_ads >= 1, "at least one advertiser required");
    assert!(tau > 0.0 && tau < 1.0, "tau must lie in (0, 1), got {tau}");
    let h = num_ads as f64;
    match num_ads {
        1 => 1.0 / 3.0,
        2 | 3 => 1.0 / (2.0 * (h + 1.0) * (1.0 + tau)),
        _ => 1.0 / ((h + 6.0) * (1.0 + tau)),
    }
}

/// The `b_min` parameter `RM_with_Oracle` passes to `Search` (Algorithm 5):
/// `1` for `h ∈ {2,3}` and `2` for `h ≥ 4` (unused for `h = 1`).
pub fn b_min_for(num_ads: usize) -> usize {
    if num_ads >= 4 {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_advertiser_ratio_is_one_third() {
        assert!((lambda(1, 0.1) - 1.0 / 3.0).abs() < 1e-12);
        // τ does not matter for h = 1.
        assert_eq!(lambda(1, 0.1), lambda(1, 0.9));
    }

    #[test]
    fn small_h_uses_the_two_h_plus_one_formula() {
        let tau = 0.1;
        assert!((lambda(2, tau) - 1.0 / (2.0 * 3.0 * 1.1)).abs() < 1e-12);
        assert!((lambda(3, tau) - 1.0 / (2.0 * 4.0 * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn large_h_uses_the_h_plus_six_formula() {
        let tau = 0.1;
        assert!((lambda(4, tau) - 1.0 / (10.0 * 1.1)).abs() < 1e-12);
        assert!((lambda(10, tau) - 1.0 / (16.0 * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn ratio_decreases_with_more_advertisers_and_larger_tau() {
        assert!(lambda(2, 0.1) > lambda(4, 0.1));
        assert!(lambda(4, 0.1) > lambda(10, 0.1));
        assert!(lambda(10, 0.05) > lambda(10, 0.5));
    }

    #[test]
    fn paper_choice_of_formula_is_the_better_one() {
        // h + 6 <= 2(h + 1) exactly when h >= 4, so the dispatch in
        // RM_with_Oracle always picks the larger ratio.
        for h in 2..20usize {
            let two_h1 = 1.0 / (2.0 * (h as f64 + 1.0) * 1.1);
            let h6 = 1.0 / ((h as f64 + 6.0) * 1.1);
            let chosen = lambda(h, 0.1);
            assert!(chosen >= two_h1.max(h6) - 1e-12, "h = {h}");
        }
    }

    #[test]
    fn b_min_dispatch_matches_algorithm_5() {
        assert_eq!(b_min_for(2), 1);
        assert_eq!(b_min_for(3), 1);
        assert_eq!(b_min_for(4), 2);
        assert_eq!(b_min_for(17), 2);
    }

    #[test]
    #[should_panic(expected = "tau must lie in (0, 1)")]
    fn invalid_tau_is_rejected() {
        lambda(5, 1.5);
    }
}
