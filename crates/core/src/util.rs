//! Small internal utilities shared by the greedy algorithms.

use rmsa_diffusion::AdId;
use rmsa_graph::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(key, node, ad)` max-heap entry with a per-advertiser version stamp
/// used for CELF-style lazy greedy evaluation: an entry whose stamp is older
/// than its advertiser's current version carries a stale (upper-bound) key
/// and must be re-evaluated before it can be selected.
#[derive(Clone, Copy, Debug)]
pub struct LazyEntry {
    /// Cached key (marginal gain or marginal rate). By submodularity it is
    /// an upper bound on the current value whenever it is stale.
    pub key: f64,
    /// Candidate node.
    pub node: NodeId,
    /// Candidate advertiser.
    pub ad: AdId,
    /// Version of `ad`'s seed set when `key` was computed.
    pub version: u32,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node == other.node && self.ad == other.ad
    }
}

impl Eq for LazyEntry {}

impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by key; NaN keys are rejected at construction time, and
        // total_cmp gives every float a total order regardless.
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.ad.cmp(&other.ad))
    }
}

/// A CELF lazy-greedy priority queue over `(node, advertiser)` candidates.
#[derive(Clone, Debug, Default)]
pub struct LazyQueue {
    heap: BinaryHeap<LazyEntry>,
}

#[cfg_attr(not(test), allow(dead_code))]
impl LazyQueue {
    /// Empty queue.
    pub fn new() -> Self {
        LazyQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        LazyQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a candidate with the given cached key.
    pub fn push(&mut self, key: f64, node: NodeId, ad: AdId, version: u32) {
        debug_assert!(!key.is_nan(), "heap keys must not be NaN");
        self.heap.push(LazyEntry {
            key,
            node,
            ad,
            version,
        });
    }

    /// Pop the entry with the largest cached key.
    pub fn pop(&mut self) -> Option<LazyEntry> {
        self.heap.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_key_order() {
        let mut q = LazyQueue::new();
        q.push(1.0, 0, 0, 0);
        q.push(5.0, 1, 0, 0);
        q.push(3.0, 2, 1, 0);
        let keys: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.key)).collect();
        assert_eq!(keys, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let mut q = LazyQueue::new();
        q.push(2.0, 3, 0, 0);
        q.push(2.0, 7, 0, 0);
        assert_eq!(q.pop().unwrap().node, 7);
        assert_eq!(q.pop().unwrap().node, 3);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = LazyQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(1.0, 0, 0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
