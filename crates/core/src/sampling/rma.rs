//! Algorithms 6 and 7: `RM_without_Oracle` (RMA) with progressive sampling,
//! plus `SeekUB`, plus the simpler one-batch variant of Section 4.3.
//!
//! RMA keeps two independent RR-set collections `R1` (used for optimisation)
//! and `R2` (used for validation). Each round it runs `RM_with_Oracle` on
//! the `R1`-based estimator with budgets relaxed to `(1 + ϱ/2)·B_i`, derives
//! an upper bound on OPT from the `Search` diagnostics (`SeekUB`), checks
//! budget feasibility and the `(λ − ε)` approximation certificate against
//! `R2`, and doubles both collections if the certificate is not yet met.
//!
//! Both collections live in a shared [`RrCache`] ([`RrStream::Optimize`] and
//! [`RrStream::Validate`]): a parameter sweep re-running RMA against the
//! same graph/model *extends* the collections of the previous run instead of
//! regenerating them, which is the core amortisation behind the
//! [`crate::solver`] API. The deprecated [`rm_without_oracle`] free function
//! reproduces the old behaviour by running against a private cache.

use crate::algorithms::rm_oracle::{rm_with_oracle, OracleSolution};
use crate::approx::lambda;
use crate::error::RmError;
use crate::oracle::RevenueOracle;
use crate::problem::{Allocation, RmInstance};
use crate::sampling::bounds::{
    failure_exponent, revenue_lower_bound, revenue_upper_bound, theta_max, theta_zero, BoundParams,
};
use crate::sampling::estimator::RrRevenueEstimator;
use rmsa_diffusion::{PropagationModel, RrCache, RrRequestStats, RrStrategy, RrStream};
use rmsa_graph::DirectedGraph;
use std::time::{Duration, Instant};

/// Configuration of the RMA algorithm.
///
/// Request-facing: carries serde derives so serving layers can embed it
/// in wire/report schemas.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RmaConfig {
    /// Approximation slack ε ∈ (0, λ).
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Binary-search accuracy τ ∈ (0, 1) of `Search`.
    pub tau: f64,
    /// Budget-overshoot parameter ϱ ∈ (0, 1) of the bicriteria guarantee.
    pub rho: f64,
    /// RR-set generation strategy (standard reverse BFS or SUBSIM). Only
    /// consulted by the deprecated free functions, which own their RR-set
    /// generation; under the [`crate::solver`] API the shared [`RrCache`]
    /// fixes the strategy.
    pub strategy: RrStrategy,
    /// Worker threads for RR-set generation (same caveat as `strategy`).
    /// Defaults from `RMSA_THREADS` via
    /// [`crate::threads::default_num_threads`].
    pub num_threads: usize,
    /// Practical cap on the size of each collection; the theoretical cap
    /// `θ_max` can exceed available memory on large instances, in which case
    /// the algorithm stops doubling at this many RR-sets per collection and
    /// reports `capped = true`.
    pub max_rr_per_collection: usize,
    /// Base RNG seed (same caveat as `strategy`).
    pub seed: u64,
}

impl Default for RmaConfig {
    fn default() -> Self {
        RmaConfig {
            epsilon: 0.02,
            delta: 0.001,
            tau: 0.1,
            rho: 0.1,
            strategy: RrStrategy::Standard,
            num_threads: crate::threads::default_num_threads(),
            max_rr_per_collection: 4_000_000,
            seed: 0xC0FFEE,
        }
    }
}

impl RmaConfig {
    /// Validate the parameter ranges of Theorems 4.2/4.3 for an instance
    /// with `num_ads` advertisers: τ, δ, ϱ ∈ (0, 1) and ε ∈ (0, λ(h, τ)).
    pub fn validate(&self, num_ads: usize) -> Result<(), RmError> {
        if num_ads == 0 {
            return Err(RmError::NoAdvertisers);
        }
        for (name, value) in [("tau", self.tau), ("delta", self.delta), ("rho", self.rho)] {
            if !(value > 0.0 && value < 1.0) {
                return Err(RmError::invalid_parameter(name, value, "(0, 1)"));
            }
        }
        let lam = lambda(num_ads, self.tau);
        if !(self.epsilon > 0.0 && self.epsilon < lam) {
            return Err(RmError::invalid_parameter(
                "epsilon",
                self.epsilon,
                format!("(0, λ = {lam:.4}) for h = {num_ads}, τ = {}", self.tau),
            ));
        }
        if self.max_rr_per_collection == 0 {
            return Err(RmError::invalid_parameter(
                "max_rr_per_collection",
                0.0,
                "[1, ∞)",
            ));
        }
        Ok(())
    }
}

/// Result of an RMA run, including the accounting the experiment harness
/// reports (sample sizes, memory proxy, wall-clock time).
#[derive(Clone, Debug)]
pub struct RmaResult {
    /// The selected allocation `S⃗*`.
    pub allocation: Allocation,
    /// λ of Theorem 3.5 for this instance's `h` and the configured τ.
    pub lambda: f64,
    /// Final number of RR-sets in `R1`.
    pub rr_sets_per_collection: usize,
    /// Total RR-sets used across both collections.
    pub total_rr_sets: usize,
    /// Number of progressive-sampling rounds executed.
    pub iterations: usize,
    /// The achieved certificate `β = LB(S⃗*) / UB(O⃗)` at termination.
    pub beta: f64,
    /// The certified revenue lower bound `LB(S⃗*)` at termination.
    pub revenue_lower_bound: f64,
    /// Whether the budget-feasibility check passed at termination.
    pub feasible: bool,
    /// Whether the practical RR-set cap was hit before the certificate held.
    pub capped: bool,
    /// Revenue estimate `π̃(S⃗*, R2)` (validation collection).
    pub revenue_estimate: f64,
    /// RR-sets freshly generated during this run (below `total_rr_sets`
    /// when a shared cache served part of the requests).
    pub rr_generated: usize,
    /// RR-sets served from the shared cache during this run.
    pub rr_reused: usize,
    /// RR-sets newly added to the shared coverage indexes during this run.
    pub index_extended: usize,
    /// RR-sets whose coverage-index entries predate this run (index work
    /// amortised away by extend-never-rebuild).
    pub index_reused: usize,
    /// Wall-clock time spent extending the coverage indexes.
    pub index_time: Duration,
    /// Approximate memory footprint of both collections in bytes.
    pub memory_bytes: usize,
    /// Portion of `memory_bytes` borrowed from a memory-mapped snapshot
    /// (0 unless the shared cache was mmap-loaded and not yet extended
    /// past its persisted collections).
    pub mapped_bytes: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// Algorithm 7: `SeekUB` — an upper bound on `π̃(O⃗, R1)` derived from the
/// `Search` endpoint solutions via Theorem 3.2.
pub fn seek_ub(solution: &OracleSolution, estimator: &RrRevenueEstimator, num_ads: usize) -> f64 {
    let est = |alloc: &Allocation| estimator.allocation_estimate(&alloc.seed_sets);
    let trivial = est(&solution.allocation) / solution.lambda;
    if num_ads == 1 {
        return trivial;
    }
    let Some(search) = &solution.search else {
        return trivial;
    };
    let h = num_ads as f64;
    let b_min = solution.b_min;
    let mut z = trivial;
    if search.b1 < b_min {
        if let Some(t2) = &search.t2 {
            z = 6.0 * est(t2);
        }
    } else if let Some(t2) = &search.t2 {
        if search.b2 == 0 {
            z = 2.0 * est(t2) + h * search.gamma2;
        } else if search.b2 == 1 {
            z = 6.0 * est(t2) + h * search.gamma2;
        }
    } else if let Some(t1) = &search.t1 {
        z = est(t1) / solution.lambda;
    }
    z.min(trivial)
}

/// Algorithm 6 running against a shared [`RrCache`]: the collections
/// `R1`/`R2` are the cache's [`RrStream::Optimize`] / [`RrStream::Validate`]
/// streams and are *extended* across invocations, so repeated solves over
/// the same graph/model amortise their sampling cost.
pub(crate) fn rma_with_cache<M: PropagationModel + ?Sized>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &RmaConfig,
    cache: &RrCache,
) -> Result<RmaResult, RmError> {
    let start = Instant::now();
    let h = instance.num_ads();
    if model.num_ads() != h {
        return Err(RmError::DimensionMismatch {
            what: "propagation model advertisers",
            expected: h,
            actual: model.num_ads(),
        });
    }
    config.validate(h)?;

    let lam = lambda(h, config.tau);
    let params = BoundParams::from_instance(instance, config.rho);
    let delta_prime = config.delta / 4.0;
    // Theorem 4.2 sample-size cap, evaluated with δ' as in Alg. 6 line 2.
    let theta_cap = theta_max(&params, config.epsilon, delta_prime, lam, config.rho);
    let theta_cap_eff = (theta_cap.ceil() as usize).min(config.max_rr_per_collection);
    let theta0 = theta_zero(&params, config.rho, delta_prime)
        .ceil()
        .max(64.0) as usize;
    let theta0 = theta0.min(theta_cap_eff.max(64));
    let t_max = ((theta_cap / theta0 as f64).log2().ceil() as usize).max(1);
    let q = failure_exponent(h, t_max, delta_prime);

    let sampler = rmsa_diffusion::UniformRrSampler::new(&instance.cpe_values());
    let n_gamma = instance.num_nodes as f64 * instance.gamma();
    let relaxed = instance.with_scaled_budgets(1.0 + config.rho / 2.0);

    let mut target = theta0;
    let mut iterations = 0usize;
    let mut rr_generated = 0usize;
    let mut rr_reused = 0usize;
    let mut index_extended = 0usize;
    let mut index_reused = 0usize;
    let mut index_time = Duration::ZERO;
    loop {
        iterations += 1;
        // Lines 4–5: make sure both collections hold ≥ `target` RR-sets
        // (possibly more, when a previous solve already extended them).
        // The estimator snapshots the stream's incrementally extended
        // coverage index — a few `Arc` bumps, not a rebuild.
        let build = |v: rmsa_diffusion::RrStreamView<'_>| {
            (
                RrRevenueEstimator::from_view(v.coverage(), instance.gamma()),
                v.memory_bytes(),
                v.mapped_bytes(),
            )
        };
        let ((est1, mem1, map1), req1) =
            cache.with_at_least(graph, model, &sampler, RrStream::Optimize, target, build);
        // R2 tracks R1's *actual* size: a warm Optimize stream (e.g. after a
        // one-batch run) must not leave the validation bounds on a tiny
        // collection while the certificate is judged against a huge R1.
        let validate_target = target.max(est1.num_rr().min(theta_cap_eff));
        let ((est2, mem2, map2), req2) = cache.with_at_least(
            graph,
            model,
            &sampler,
            RrStream::Validate,
            validate_target,
            build,
        );
        rr_generated += req1.generated + req2.generated;
        rr_reused += req1.served_from_cache + req2.served_from_cache;
        index_extended += req1.index_extended + req2.index_extended;
        index_reused += req1.index_reused + req2.index_reused;
        index_time += req1.index_extend_time + req2.index_extend_time;

        // Line 6: run the oracle algorithms on the R1 estimator with relaxed
        // budgets (1 + ϱ/2)·B_i.
        let solution = rm_with_oracle(&relaxed, &est1, config.tau);

        // Line 7: upper bound on π̃(O⃗, R1).
        let z = seek_ub(&solution, &est1, h);

        // Lines 9–11: budget feasibility of each S*_i against R2.
        let mut feasible = true;
        for ad in 0..h {
            let seeds = solution.allocation.seeds(ad);
            let cov = est2.revenue(ad, seeds) / est2.scale().max(f64::MIN_POSITIVE);
            let ub = revenue_upper_bound(cov, q, n_gamma, est2.num_rr());
            let seed_cost = instance.set_cost(ad, seeds);
            if ub > (1.0 + config.rho) * instance.budget(ad) - seed_cost {
                feasible = false;
                break;
            }
        }

        // Lines 12–14: the approximation certificate β = LB(S⃗*)/UB(O⃗).
        let cov_total = est2.allocation_estimate(&solution.allocation.seed_sets)
            / est2.scale().max(f64::MIN_POSITIVE);
        let lb = revenue_lower_bound(cov_total, q, n_gamma, est2.num_rr());
        let cov_opt = z / est1.scale().max(f64::MIN_POSITIVE);
        let ub_opt = revenue_upper_bound(cov_opt, q, n_gamma, est1.num_rr());
        let beta = if ub_opt > 0.0 { lb / ub_opt } else { 1.0 };

        let reached_cap = est1.num_rr() >= theta_cap_eff && est2.num_rr() >= theta_cap_eff;
        if (beta >= lam - config.epsilon && feasible) || reached_cap {
            let revenue_estimate = est2.allocation_estimate(&solution.allocation.seed_sets);
            return Ok(RmaResult {
                allocation: solution.allocation,
                lambda: lam,
                rr_sets_per_collection: est1.num_rr(),
                total_rr_sets: est1.num_rr() + est2.num_rr(),
                iterations,
                beta,
                revenue_lower_bound: lb,
                feasible,
                capped: reached_cap && !(beta >= lam - config.epsilon && feasible),
                revenue_estimate,
                rr_generated,
                rr_reused,
                index_extended,
                index_reused,
                index_time,
                memory_bytes: mem1 + mem2,
                mapped_bytes: map1 + map2,
                elapsed: start.elapsed(),
            });
        }

        // Line 16: double both collections.
        target = (est1.num_rr().max(target) * 2).min(theta_cap_eff);
    }
}

/// Clamp ε into the admissible `(0, λ(h, τ))` range, preserving the
/// pre-0.2 behaviour of the deprecated entry points, which accepted any
/// ε > 0 (an over-large ε simply made the certificate trivially
/// satisfiable).
fn legacy_config(config: &RmaConfig, num_ads: usize) -> RmaConfig {
    let mut cfg = config.clone();
    if cfg.tau > 0.0 && cfg.tau < 1.0 && num_ads >= 1 {
        cfg.epsilon = cfg.epsilon.min(0.999 * lambda(num_ads, cfg.tau));
    }
    cfg
}

/// Algorithm 6: `RM_without_Oracle(ε, δ, τ, ϱ)` — the RMA algorithm, run
/// against a private single-use RR-set cache. ε values at or above
/// λ(h, τ) are clamped into the admissible range, matching the pre-0.2
/// acceptance of this entry point.
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::Rma` with a `SolveContext` \
            (or a `Workbench`), which shares RR-set collections across runs"
)]
#[allow(clippy::expect_used)]
pub fn rm_without_oracle<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &RmaConfig,
) -> RmaResult {
    let cache = RrCache::new(
        instance.num_nodes,
        config.strategy,
        config.num_threads,
        config.seed,
    );
    let cfg = legacy_config(config, instance.num_ads());
    // lint: allow(R1, reason = "deprecated pre-0.2 API whose documented contract is to panic on invalid configuration")
    rma_with_cache(graph, model, instance, &cfg, &cache).expect("invalid RMA configuration")
}

/// The one-batch algorithm of Section 4.3 against a shared cache: a single
/// collection of `num_rr_sets` RR-sets (the [`RrStream::Optimize`] stream,
/// shared with RMA) feeds `RM_with_Oracle` once under relaxed budgets.
pub(crate) fn one_batch_with_cache<M: PropagationModel + ?Sized>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    num_rr_sets: usize,
    config: &RmaConfig,
    cache: &RrCache,
) -> Result<(Allocation, RrRevenueEstimator, RrRequestStats), RmError> {
    let h = instance.num_ads();
    if model.num_ads() != h {
        return Err(RmError::DimensionMismatch {
            what: "propagation model advertisers",
            expected: h,
            actual: model.num_ads(),
        });
    }
    config.validate(h)?;
    let sampler = rmsa_diffusion::UniformRrSampler::new(&instance.cpe_values());
    let (est, request) = cache.with_at_least(
        graph,
        model,
        &sampler,
        RrStream::Optimize,
        num_rr_sets,
        |v| RrRevenueEstimator::from_view(v.coverage(), instance.gamma()),
    );
    let relaxed = instance.with_scaled_budgets(1.0 + config.rho / 2.0);
    let solution = rm_with_oracle(&relaxed, &est, config.tau);
    Ok((solution.allocation, est, request))
}

/// The one-batch algorithm of Section 4.3 with a private single-use cache.
/// ε values at or above λ(h, τ) are clamped into the admissible range,
/// matching the pre-0.2 acceptance of this entry point.
#[deprecated(
    since = "0.2.0",
    note = "use the unified solver API: `rmsa_core::solver::OneBatch` with a `SolveContext`"
)]
#[allow(clippy::expect_used)]
pub fn one_batch<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    num_rr_sets: usize,
    config: &RmaConfig,
) -> (Allocation, RrRevenueEstimator) {
    let cache = RrCache::new(
        instance.num_nodes,
        config.strategy,
        config.num_threads,
        config.seed,
    );
    let cfg = legacy_config(config, instance.num_ads());
    let (allocation, estimator, _) =
        one_batch_with_cache(graph, model, instance, num_rr_sets, &cfg, &cache)
            // lint: allow(R1, reason = "deprecated pre-0.2 API whose documented contract is to panic on invalid configuration")
            .expect("invalid one-batch configuration");
    (allocation, estimator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::{RrArena, UniformIc, UniformRrSampler};
    use rmsa_graph::generators::celebrity_graph;

    fn setup(h: usize) -> (DirectedGraph, UniformIc, RmInstance) {
        let g = celebrity_graph(6, 8); // 54 nodes
        let m = UniformIc::new(h, 0.4);
        let n = g.num_nodes();
        let inst = RmInstance::try_new(
            n,
            (0..h)
                .map(|_| Advertiser::try_new(12.0, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; n]),
        )
        .unwrap();
        (g, m, inst)
    }

    fn quick_config() -> RmaConfig {
        RmaConfig {
            epsilon: 0.1,
            delta: 0.1,
            tau: 0.1,
            rho: 0.2,
            strategy: RrStrategy::Standard,
            num_threads: 1,
            max_rr_per_collection: 40_000,
            seed: 7,
        }
    }

    fn fresh_cache(n: usize, cfg: &RmaConfig) -> RrCache {
        RrCache::new(n, cfg.strategy, cfg.num_threads, cfg.seed)
    }

    fn run(g: &DirectedGraph, m: &UniformIc, inst: &RmInstance, cfg: &RmaConfig) -> RmaResult {
        let cache = fresh_cache(inst.num_nodes, cfg);
        rma_with_cache(g, m, inst, cfg, &cache).expect("valid config")
    }

    #[test]
    fn rma_returns_a_disjoint_budget_respecting_allocation() {
        let (g, m, inst) = setup(3);
        let res = run(&g, &m, &inst, &quick_config());
        assert!(res.allocation.is_disjoint());
        assert!(res.iterations >= 1);
        assert!(res.rr_sets_per_collection > 0);
        assert!(res.total_rr_sets == 2 * res.rr_sets_per_collection);
        assert!(res.memory_bytes > 0);
        assert!(res.revenue_lower_bound <= res.revenue_estimate + 1e-9);
        // Bicriteria budget check against the *estimate* (the guarantee is
        // probabilistic; with the generous ε here we only sanity-check that
        // the spend is in the right ballpark of (1+ϱ)B).
        for ad in 0..inst.num_ads() {
            let seeds = res.allocation.seeds(ad);
            let cost = inst.set_cost(ad, seeds);
            assert!(
                cost <= (1.0 + 0.2) * inst.budget(ad) + 1e-9,
                "seed cost alone must respect the relaxed budget"
            );
        }
    }

    #[test]
    fn rma_single_advertiser_runs_greedy_path() {
        let (g, m, inst) = setup(1);
        let res = run(&g, &m, &inst, &quick_config());
        assert!((res.lambda - 1.0 / 3.0).abs() < 1e-12);
        assert!(!res.allocation.seed_sets[0].is_empty());
    }

    #[test]
    fn rma_respects_the_practical_cap() {
        let (g, m, inst) = setup(2);
        let mut cfg = quick_config();
        cfg.max_rr_per_collection = 256;
        cfg.epsilon = 0.0001; // essentially unreachable certificate
        let res = run(&g, &m, &inst, &cfg);
        assert!(res.rr_sets_per_collection <= 256);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (g, m, inst) = setup(3);
        let cache = fresh_cache(inst.num_nodes, &quick_config());
        let mut cfg = quick_config();
        cfg.epsilon = 0.5; // above λ(3, 0.1) ≈ 0.114
        assert!(matches!(
            rma_with_cache(&g, &m, &inst, &cfg, &cache),
            Err(RmError::InvalidParameter {
                name: "epsilon",
                ..
            })
        ));
        let mut cfg = quick_config();
        cfg.rho = 1.5;
        assert!(matches!(
            rma_with_cache(&g, &m, &inst, &cfg, &cache),
            Err(RmError::InvalidParameter { name: "rho", .. })
        ));
        let cfg = quick_config();
        let wrong_model = UniformIc::new(5, 0.4);
        assert!(matches!(
            rma_with_cache(&g, &wrong_model, &inst, &cfg, &cache),
            Err(RmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn warm_cache_reduces_generation_on_a_second_solve() {
        let (g, m, inst) = setup(3);
        let cfg = quick_config();
        let cache = fresh_cache(inst.num_nodes, &cfg);
        let first = rma_with_cache(&g, &m, &inst, &cfg, &cache).unwrap();
        let generated_first = cache.stats().generated;
        // Same instance solved again: everything is served from cache.
        let second = rma_with_cache(&g, &m, &inst, &cfg, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.generated, generated_first, "no new RR-sets expected");
        assert!(stats.served_from_cache > 0);
        assert_eq!(first.allocation, second.allocation);
    }

    #[test]
    fn warm_optimize_stream_still_gets_a_matching_validation_collection() {
        // A one-batch run extends only the Optimize stream; a subsequent
        // RMA run must bring the Validate stream up to R1's actual size
        // instead of judging the certificate against a tiny R2.
        let (g, m, inst) = setup(2);
        let cfg = quick_config();
        let cache = fresh_cache(inst.num_nodes, &cfg);
        one_batch_with_cache(&g, &m, &inst, 20_000, &cfg, &cache).unwrap();
        assert_eq!(cache.len(RrStream::Optimize), 20_000);
        assert_eq!(cache.len(RrStream::Validate), 0);
        let res = rma_with_cache(&g, &m, &inst, &cfg, &cache).unwrap();
        assert_eq!(
            res.total_rr_sets - res.rr_sets_per_collection,
            res.rr_sets_per_collection,
            "R2 must match R1's size after a warm start"
        );
        assert!(res.rr_sets_per_collection >= 20_000);
    }

    #[test]
    fn seek_ub_is_at_least_the_solution_estimate() {
        let (g, m, inst) = setup(4);
        let sampler = UniformRrSampler::new(&inst.cpe_values());
        let mut arena = RrArena::new(inst.num_nodes, RrStrategy::Standard);
        let mut rng = <rand_pcg::Pcg64Mcg as rand::SeedableRng>::seed_from_u64(3);
        arena.generate(&g, &m, &sampler, 20_000, &mut rng);
        let est = RrRevenueEstimator::new(&arena, inst.num_ads(), inst.gamma());
        let sol = rm_with_oracle(&inst, &est, 0.1);
        let z = seek_ub(&sol, &est, inst.num_ads());
        let pi_sol = est.allocation_estimate(&sol.allocation.seed_sets);
        assert!(
            z >= pi_sol - 1e-9,
            "UB on OPT ({z}) cannot be below the solution estimate ({pi_sol})"
        );
    }

    #[test]
    fn one_batch_produces_a_nonempty_allocation() {
        let (g, m, inst) = setup(2);
        let cfg = quick_config();
        let cache = fresh_cache(inst.num_nodes, &cfg);
        let (alloc, est, request) =
            one_batch_with_cache(&g, &m, &inst, 10_000, &cfg, &cache).expect("valid config");
        assert_eq!(request.requested, 10_000);
        assert!(alloc.total_seeds() > 0);
        assert!(est.allocation_estimate(&alloc.seed_sets) > 0.0);
        assert!(alloc.is_disjoint());
    }

    #[test]
    fn more_rr_sets_do_not_hurt_revenue_much() {
        // The estimate from a larger sample should be close to (and usually
        // no worse than) the small-sample run's true quality; here we just
        // check both runs return sensible, comparable revenue.
        let (g, m, inst) = setup(2);
        let cfg = quick_config();
        let cache = fresh_cache(inst.num_nodes, &cfg);
        let (a_small, est_small, _) =
            one_batch_with_cache(&g, &m, &inst, 2_000, &cfg, &cache).unwrap();
        let (a_large, est_large, _) =
            one_batch_with_cache(&g, &m, &inst, 30_000, &cfg, &cache).unwrap();
        let r_small = est_small.allocation_estimate(&a_small.seed_sets);
        let r_large = est_large.allocation_estimate(&a_large.seed_sets);
        assert!(r_small > 0.0 && r_large > 0.0);
        assert!((r_small - r_large).abs() / r_large < 0.5);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_free_functions_still_work() {
        let (g, m, inst) = setup(2);
        let res = rm_without_oracle(&g, &m, &inst, &quick_config());
        assert!(res.allocation.is_disjoint());
        let (alloc, _) = one_batch(&g, &m, &inst, 5_000, &quick_config());
        assert!(alloc.is_disjoint());
    }
}
