//! Algorithms 6 and 7: `RM_without_Oracle` (RMA) with progressive sampling,
//! plus `SeekUB`, plus the simpler one-batch variant of Section 4.3.
//!
//! RMA keeps two independent RR-set collections `R1` (used for optimisation)
//! and `R2` (used for validation). Each round it runs `RM_with_Oracle` on
//! the `R1`-based estimator with budgets relaxed to `(1 + ϱ/2)·B_i`, derives
//! an upper bound on OPT from the `Search` diagnostics (`SeekUB`), checks
//! budget feasibility and the `(λ − ε)` approximation certificate against
//! `R2`, and doubles both collections if the certificate is not yet met.

use crate::algorithms::rm_oracle::{rm_with_oracle, OracleSolution};
use crate::approx::lambda;
use crate::oracle::RevenueOracle;
use crate::problem::{Allocation, RmInstance};
use crate::sampling::bounds::{
    failure_exponent, revenue_lower_bound, revenue_upper_bound, theta_max, theta_zero, BoundParams,
};
use crate::sampling::estimator::RrRevenueEstimator;
use rmsa_diffusion::{PropagationModel, RrCollection, RrStrategy, UniformRrSampler};
use rmsa_graph::DirectedGraph;
use std::time::{Duration, Instant};

/// Configuration of the RMA algorithm.
#[derive(Clone, Debug)]
pub struct RmaConfig {
    /// Approximation slack ε ∈ (0, λ).
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Binary-search accuracy τ ∈ (0, 1) of `Search`.
    pub tau: f64,
    /// Budget-overshoot parameter ϱ ∈ (0, 1) of the bicriteria guarantee.
    pub rho: f64,
    /// RR-set generation strategy (standard reverse BFS or SUBSIM).
    pub strategy: RrStrategy,
    /// Worker threads for RR-set generation.
    pub num_threads: usize,
    /// Practical cap on the size of each collection; the theoretical cap
    /// `θ_max` can exceed available memory on large instances, in which case
    /// the algorithm stops doubling at this many RR-sets per collection and
    /// reports `capped = true`.
    pub max_rr_per_collection: usize,
    /// Base RNG seed (R1 and R2 derive distinct streams from it).
    pub seed: u64,
}

impl Default for RmaConfig {
    fn default() -> Self {
        RmaConfig {
            epsilon: 0.02,
            delta: 0.001,
            tau: 0.1,
            rho: 0.1,
            strategy: RrStrategy::Standard,
            num_threads: 4,
            max_rr_per_collection: 4_000_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of an RMA run, including the accounting the experiment harness
/// reports (sample sizes, memory proxy, wall-clock time).
#[derive(Clone, Debug)]
pub struct RmaResult {
    /// The selected allocation `S⃗*`.
    pub allocation: Allocation,
    /// λ of Theorem 3.5 for this instance's `h` and the configured τ.
    pub lambda: f64,
    /// Final number of RR-sets in `R1` (same for `R2`).
    pub rr_sets_per_collection: usize,
    /// Total RR-sets generated across both collections.
    pub total_rr_sets: usize,
    /// Number of progressive-sampling rounds executed.
    pub iterations: usize,
    /// The achieved certificate `β = LB(S⃗*) / UB(O⃗)` at termination.
    pub beta: f64,
    /// Whether the budget-feasibility check passed at termination.
    pub feasible: bool,
    /// Whether the practical RR-set cap was hit before the certificate held.
    pub capped: bool,
    /// Revenue estimate `π̃(S⃗*, R2)` (validation collection).
    pub revenue_estimate: f64,
    /// Approximate memory footprint of both collections in bytes.
    pub memory_bytes: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// Algorithm 7: `SeekUB` — an upper bound on `π̃(O⃗, R1)` derived from the
/// `Search` endpoint solutions via Theorem 3.2.
pub fn seek_ub(
    solution: &OracleSolution,
    estimator: &RrRevenueEstimator,
    num_ads: usize,
) -> f64 {
    let est = |alloc: &Allocation| estimator.allocation_estimate(&alloc.seed_sets);
    let trivial = est(&solution.allocation) / solution.lambda;
    if num_ads == 1 {
        return trivial;
    }
    let Some(search) = &solution.search else {
        return trivial;
    };
    let h = num_ads as f64;
    let b_min = solution.b_min;
    let mut z = trivial;
    if search.b1 < b_min {
        if let Some(t2) = &search.t2 {
            z = 6.0 * est(t2);
        }
    } else if let Some(t2) = &search.t2 {
        if search.b2 == 0 {
            z = 2.0 * est(t2) + h * search.gamma2;
        } else if search.b2 == 1 {
            z = 6.0 * est(t2) + h * search.gamma2;
        }
    } else if let Some(t1) = &search.t1 {
        z = est(t1) / solution.lambda;
    }
    z.min(trivial)
}

/// Algorithm 6: `RM_without_Oracle(ε, δ, τ, ϱ)` — the RMA algorithm.
pub fn rm_without_oracle<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    config: &RmaConfig,
) -> RmaResult {
    let start = Instant::now();
    let h = instance.num_ads();
    assert_eq!(model.num_ads(), h, "model/advertiser count mismatch");
    assert!(config.epsilon > 0.0 && config.delta > 0.0 && config.delta < 1.0);
    assert!(config.rho > 0.0 && config.rho < 1.0);

    let lam = lambda(h, config.tau);
    let params = BoundParams::from_instance(instance, config.rho);
    let delta_prime = config.delta / 4.0;
    // Theorem 4.2 sample-size cap, evaluated with δ' as in Alg. 6 line 2.
    let theta_cap = theta_max(&params, config.epsilon, delta_prime, lam, config.rho);
    let theta_cap_eff = (theta_cap.ceil() as usize).min(config.max_rr_per_collection);
    let theta0 = theta_zero(&params, config.rho, delta_prime)
        .ceil()
        .max(64.0) as usize;
    let theta0 = theta0.min(theta_cap_eff.max(64));
    let t_max = ((theta_cap / theta0 as f64).log2().ceil() as usize).max(1);
    let q = failure_exponent(h, t_max, delta_prime);

    let sampler = UniformRrSampler::new(&instance.cpe_values());
    let n_gamma = instance.num_nodes as f64 * instance.gamma();
    let relaxed = instance.with_scaled_budgets(1.0 + config.rho / 2.0);

    let mut r1 = RrCollection::new(instance.num_nodes, config.strategy);
    let mut r2 = RrCollection::new(instance.num_nodes, config.strategy);
    r1.generate_parallel(graph, model, &sampler, theta0, config.num_threads, config.seed);
    r2.generate_parallel(
        graph,
        model,
        &sampler,
        theta0,
        config.num_threads,
        config.seed ^ 0x5DEECE66D,
    );

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let est1 = RrRevenueEstimator::new(&r1, h, instance.gamma());
        let est2 = RrRevenueEstimator::new(&r2, h, instance.gamma());

        // Line 6: run the oracle algorithms on the R1 estimator with relaxed
        // budgets (1 + ϱ/2)·B_i.
        let solution = rm_with_oracle(&relaxed, &est1, config.tau);

        // Line 7: upper bound on π̃(O⃗, R1).
        let z = seek_ub(&solution, &est1, h);

        // Lines 9–11: budget feasibility of each S*_i against R2.
        let mut feasible = true;
        for ad in 0..h {
            let seeds = solution.allocation.seeds(ad);
            let cov = est2.revenue(ad, seeds) / est2.scale().max(f64::MIN_POSITIVE);
            let ub = revenue_upper_bound(cov, q, n_gamma, r2.len());
            let seed_cost = instance.set_cost(ad, seeds);
            if ub > (1.0 + config.rho) * instance.budget(ad) - seed_cost {
                feasible = false;
                break;
            }
        }

        // Lines 12–14: the approximation certificate β = LB(S⃗*)/UB(O⃗).
        let cov_total =
            est2.allocation_estimate(&solution.allocation.seed_sets) / est2.scale().max(f64::MIN_POSITIVE);
        let lb = revenue_lower_bound(cov_total, q, n_gamma, r2.len());
        let cov_opt = z / est1.scale().max(f64::MIN_POSITIVE);
        let ub_opt = revenue_upper_bound(cov_opt, q, n_gamma, r1.len());
        let beta = if ub_opt > 0.0 { lb / ub_opt } else { 1.0 };

        let reached_cap = r1.len() >= theta_cap_eff;
        if (beta >= lam - config.epsilon && feasible) || reached_cap {
            let revenue_estimate = est2.allocation_estimate(&solution.allocation.seed_sets);
            let memory_bytes = r1.memory_bytes() + r2.memory_bytes();
            return RmaResult {
                allocation: solution.allocation,
                lambda: lam,
                rr_sets_per_collection: r1.len(),
                total_rr_sets: r1.len() + r2.len(),
                iterations,
                beta,
                feasible,
                capped: reached_cap && !(beta >= lam - config.epsilon && feasible),
                revenue_estimate,
                memory_bytes,
                elapsed: start.elapsed(),
            };
        }

        // Line 16: double both collections.
        let extra = r1.len().min(theta_cap_eff - r1.len()).max(1);
        r1.generate_parallel(
            graph,
            model,
            &sampler,
            extra,
            config.num_threads,
            config.seed.wrapping_add(iterations as u64 * 2 + 1),
        );
        r2.generate_parallel(
            graph,
            model,
            &sampler,
            extra,
            config.num_threads,
            config.seed.wrapping_add(iterations as u64 * 2 + 2),
        );
    }
}

/// The one-batch algorithm of Section 4.3: generate a single collection of
/// `num_rr_sets` RR-sets (the caller typically passes `θ_max`, possibly
/// capped) and run `RM_with_Oracle` on the estimator with relaxed budgets.
pub fn one_batch<M: PropagationModel>(
    graph: &DirectedGraph,
    model: &M,
    instance: &RmInstance,
    num_rr_sets: usize,
    config: &RmaConfig,
) -> (Allocation, RrRevenueEstimator) {
    let sampler = UniformRrSampler::new(&instance.cpe_values());
    let mut coll = RrCollection::new(instance.num_nodes, config.strategy);
    coll.generate_parallel(
        graph,
        model,
        &sampler,
        num_rr_sets,
        config.num_threads,
        config.seed,
    );
    let est = RrRevenueEstimator::new(&coll, instance.num_ads(), instance.gamma());
    let relaxed = instance.with_scaled_budgets(1.0 + config.rho / 2.0);
    let solution = rm_with_oracle(&relaxed, &est, config.tau);
    (solution.allocation, est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::generators::celebrity_graph;

    fn setup(h: usize) -> (DirectedGraph, UniformIc, RmInstance) {
        let g = celebrity_graph(6, 8); // 54 nodes
        let m = UniformIc::new(h, 0.4);
        let n = g.num_nodes();
        let inst = RmInstance::new(
            n,
            (0..h).map(|_| Advertiser::new(12.0, 1.0)).collect(),
            SeedCosts::Shared(vec![1.0; n]),
        );
        (g, m, inst)
    }

    fn quick_config() -> RmaConfig {
        RmaConfig {
            epsilon: 0.1,
            delta: 0.1,
            tau: 0.1,
            rho: 0.2,
            strategy: RrStrategy::Standard,
            num_threads: 1,
            max_rr_per_collection: 40_000,
            seed: 7,
        }
    }

    #[test]
    fn rma_returns_a_disjoint_budget_respecting_allocation() {
        let (g, m, inst) = setup(3);
        let res = rm_without_oracle(&g, &m, &inst, &quick_config());
        assert!(res.allocation.is_disjoint());
        assert!(res.iterations >= 1);
        assert!(res.rr_sets_per_collection > 0);
        assert!(res.total_rr_sets == 2 * res.rr_sets_per_collection);
        assert!(res.memory_bytes > 0);
        // Bicriteria budget check against the *estimate* (the guarantee is
        // probabilistic; with the generous ε here we only sanity-check that
        // the spend is in the right ballpark of (1+ϱ)B).
        for ad in 0..inst.num_ads() {
            let seeds = res.allocation.seeds(ad);
            let cost = inst.set_cost(ad, seeds);
            assert!(
                cost <= (1.0 + 0.2) * inst.budget(ad) + 1e-9,
                "seed cost alone must respect the relaxed budget"
            );
        }
    }

    #[test]
    fn rma_single_advertiser_runs_greedy_path() {
        let (g, m, inst) = setup(1);
        let res = rm_without_oracle(&g, &m, &inst, &quick_config());
        assert!((res.lambda - 1.0 / 3.0).abs() < 1e-12);
        assert!(!res.allocation.seed_sets[0].is_empty());
    }

    #[test]
    fn rma_respects_the_practical_cap() {
        let (g, m, inst) = setup(2);
        let mut cfg = quick_config();
        cfg.max_rr_per_collection = 256;
        cfg.epsilon = 0.0001; // essentially unreachable certificate
        let res = rm_without_oracle(&g, &m, &inst, &cfg);
        assert!(res.rr_sets_per_collection <= 256);
    }

    #[test]
    fn seek_ub_is_at_least_the_solution_estimate() {
        let (g, m, inst) = setup(4);
        let sampler = UniformRrSampler::new(&inst.cpe_values());
        let mut coll = RrCollection::new(inst.num_nodes, RrStrategy::Standard);
        let mut rng = <rand_pcg::Pcg64Mcg as rand::SeedableRng>::seed_from_u64(3);
        coll.generate(&g, &m, &sampler, 20_000, &mut rng);
        let est = RrRevenueEstimator::new(&coll, inst.num_ads(), inst.gamma());
        let sol = rm_with_oracle(&inst, &est, 0.1);
        let z = seek_ub(&sol, &est, inst.num_ads());
        let pi_sol = est.allocation_estimate(&sol.allocation.seed_sets);
        assert!(
            z >= pi_sol - 1e-9,
            "UB on OPT ({z}) cannot be below the solution estimate ({pi_sol})"
        );
    }

    #[test]
    fn one_batch_produces_a_nonempty_allocation() {
        let (g, m, inst) = setup(2);
        let (alloc, est) = one_batch(&g, &m, &inst, 10_000, &quick_config());
        assert!(alloc.total_seeds() > 0);
        assert!(est.allocation_estimate(&alloc.seed_sets) > 0.0);
        assert!(alloc.is_disjoint());
    }

    #[test]
    fn more_rr_sets_do_not_hurt_revenue_much() {
        // The estimate from a larger sample should be close to (and usually
        // no worse than) the small-sample run's true quality; here we just
        // check both runs return sensible, comparable revenue.
        let (g, m, inst) = setup(2);
        let cfg = quick_config();
        let (a_small, est_small) = one_batch(&g, &m, &inst, 2_000, &cfg);
        let (a_large, est_large) = one_batch(&g, &m, &inst, 30_000, &cfg);
        let r_small = est_small.allocation_estimate(&a_small.seed_sets);
        let r_large = est_large.allocation_estimate(&a_large.seed_sets);
        assert!(r_small > 0.0 && r_large > 0.0);
        assert!((r_small - r_large).abs() / r_large < 0.5);
    }
}
