//! Sample-size and concentration bounds for the sampling algorithms
//! (Theorem 4.2 and the UB/LB formulas of Algorithm 6).

use crate::problem::RmInstance;

/// Inputs shared by every bound: problem-size quantities derived from the
/// instance plus the user parameters.
#[derive(Clone, Debug)]
pub struct BoundParams {
    /// Number of nodes `n`.
    pub n: f64,
    /// Number of advertisers `h`.
    pub h: f64,
    /// `Γ = Σ_i cpe(i)`.
    pub gamma: f64,
    /// Smallest budget `B_min`.
    pub b_min: f64,
    /// `μ_i`: max nodes advertiser `i` can seed within `(1+ϱ)B_i`.
    pub mu: Vec<f64>,
    /// `μ = max_i μ_i`.
    pub mu_max: f64,
}

impl BoundParams {
    /// Derive the bound parameters from an instance and the budget-overshoot
    /// parameter ϱ.
    pub fn from_instance(instance: &RmInstance, rho: f64) -> Self {
        let h = instance.num_ads();
        let mu: Vec<f64> = (0..h)
            .map(|i| instance.max_seeds_within(i, (1.0 + rho) * instance.budget(i)) as f64)
            .collect();
        let mu_max = mu.iter().copied().fold(1.0f64, f64::max);
        BoundParams {
            n: instance.num_nodes as f64,
            h: h as f64,
            gamma: instance.gamma(),
            b_min: instance.min_budget(),
            mu,
            mu_max,
        }
    }
}

/// `ε_1` of Eq. (15): the split of ε used by `θ̂_max`.
fn epsilon_one(params: &BoundParams, epsilon: f64, delta: f64, lambda: f64) -> f64 {
    let ln4d = (4.0 / delta).ln();
    let sum_mu: f64 = params
        .mu
        .iter()
        .map(|&mu_i| mu_i * (std::f64::consts::E * params.n / mu_i).ln())
        .sum();
    epsilon * ln4d.sqrt() / (lambda * ln4d.sqrt() + (lambda * (ln4d + sum_mu)).sqrt())
}

/// `θ̂_max` of Theorem 4.2.
pub fn theta_hat_max(params: &BoundParams, epsilon: f64, delta: f64, lambda: f64) -> f64 {
    let ln4d = (4.0 / delta).ln();
    let sum_mu: f64 = params
        .mu
        .iter()
        .map(|&mu_i| mu_i * (std::f64::consts::E * params.n / mu_i).ln())
        .sum();
    let inner = lambda * ln4d.sqrt() + (lambda * (ln4d + sum_mu)).sqrt();
    2.0 * params.n / (epsilon * epsilon) * inner * inner
}

/// `θ̄_max` of Theorem 4.2.
pub fn theta_bar_max(params: &BoundParams, rho: f64, delta: f64) -> f64 {
    let mu = params.mu_max;
    8.0 * params.n * params.gamma * (1.0 + rho) / (rho * rho * params.b_min)
        * ((4.0 * params.h / delta).ln() + mu * (std::f64::consts::E * params.n / mu).ln())
}

/// `θ_max = max(θ̂_max, θ̄_max)`.
pub fn theta_max(params: &BoundParams, epsilon: f64, delta: f64, lambda: f64, rho: f64) -> f64 {
    theta_hat_max(params, epsilon, delta, lambda).max(theta_bar_max(params, rho, delta))
}

/// `θ_0` of Algorithm 6 line 3: the initial batch size.
pub fn theta_zero(params: &BoundParams, rho: f64, delta_prime: f64) -> f64 {
    4.0 * params.n * params.gamma * (2.0 + rho / 3.0) / (rho * rho * params.b_min)
        * (params.h / delta_prime).ln()
}

/// The per-check failure exponent `q = ln((h+2)·t_max / δ')` of Algorithm 6
/// line 3.
pub fn failure_exponent(h: usize, t_max: usize, delta_prime: f64) -> f64 {
    (((h as f64) + 2.0) * t_max as f64 / delta_prime).ln()
}

/// Martingale-style upper bound on a true revenue given its estimated
/// coverage count (Algorithm 6 lines 10 and 13):
/// `UB = ( sqrt(cov + q/2) + sqrt(q/2) )² · nΓ / |R|`.
pub fn revenue_upper_bound(coverage_count: f64, q: f64, n_gamma: f64, num_rr: usize) -> f64 {
    if num_rr == 0 {
        return f64::INFINITY;
    }
    let s = ((coverage_count + q / 2.0).sqrt() + (q / 2.0).sqrt()).powi(2);
    s * n_gamma / num_rr as f64
}

/// Martingale-style lower bound on a true revenue given its estimated
/// coverage count (Algorithm 6 line 12):
/// `LB = ( (sqrt(cov + 2q/9) − sqrt(q/2))² − q/18 ) · nΓ / |R|`, clamped at 0.
pub fn revenue_lower_bound(coverage_count: f64, q: f64, n_gamma: f64, num_rr: usize) -> f64 {
    if num_rr == 0 {
        return 0.0;
    }
    let root = (coverage_count + 2.0 * q / 9.0).sqrt() - (q / 2.0).sqrt();
    let s = root.max(0.0).powi(2) - q / 18.0;
    (s * n_gamma / num_rr as f64).max(0.0)
}

/// `ε_2 = ε − λ·ε_1` of Eq. (16); exposed for the one-batch analysis tests.
pub fn epsilon_two(params: &BoundParams, epsilon: f64, delta: f64, lambda: f64) -> f64 {
    epsilon - lambda * epsilon_one(params, epsilon, delta, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};

    fn params() -> BoundParams {
        let inst = RmInstance::try_new(
            100,
            vec![
                Advertiser::try_new(50.0, 1.0).unwrap(),
                Advertiser::try_new(80.0, 2.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 100]),
        )
        .unwrap();
        BoundParams::from_instance(&inst, 0.1)
    }

    #[test]
    fn bound_params_reflect_the_instance() {
        let p = params();
        assert_eq!(p.n, 100.0);
        assert_eq!(p.h, 2.0);
        assert_eq!(p.gamma, 3.0);
        assert_eq!(p.b_min, 50.0);
        // With unit costs, μ_0 = floor(1.1·50) = 55, μ_1 = floor(1.1·80) = 88.
        assert_eq!(p.mu, vec![55.0, 88.0]);
        assert_eq!(p.mu_max, 88.0);
    }

    #[test]
    fn theta_max_dominates_both_components() {
        let p = params();
        let (eps, delta, lam, rho) = (0.1, 0.01, 0.2, 0.1);
        let t = theta_max(&p, eps, delta, lam, rho);
        assert!(t >= theta_hat_max(&p, eps, delta, lam));
        assert!(t >= theta_bar_max(&p, rho, delta));
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn theta_values_grow_as_epsilon_and_rho_shrink() {
        let p = params();
        assert!(
            theta_hat_max(&p, 0.05, 0.01, 0.2) > theta_hat_max(&p, 0.1, 0.01, 0.2),
            "θ̂ must grow when ε shrinks"
        );
        assert!(
            theta_bar_max(&p, 0.05, 0.01) > theta_bar_max(&p, 0.1, 0.01),
            "θ̄ must grow when ϱ shrinks"
        );
        assert!(
            theta_zero(&p, 0.05, 0.0025) > theta_zero(&p, 0.1, 0.0025),
            "θ₀ must grow when ϱ shrinks"
        );
    }

    #[test]
    fn theta_zero_is_far_below_theta_max() {
        let p = params();
        let t0 = theta_zero(&p, 0.1, 0.0025);
        let tm = theta_max(&p, 0.1, 0.01, 0.2, 0.1);
        assert!(t0 < tm, "θ₀ = {t0} should be below θ_max = {tm}");
    }

    #[test]
    fn upper_bound_exceeds_point_estimate_and_lower_bound() {
        let (q, n_gamma, num_rr) = (5.0, 300.0, 10_000usize);
        for &cov in &[0.0, 3.0, 40.0, 900.0] {
            let point = cov * n_gamma / num_rr as f64;
            let ub = revenue_upper_bound(cov, q, n_gamma, num_rr);
            let lb = revenue_lower_bound(cov, q, n_gamma, num_rr);
            assert!(ub >= point - 1e-12, "cov = {cov}");
            assert!(lb <= point + 1e-12, "cov = {cov}");
            assert!(lb >= 0.0);
        }
    }

    #[test]
    fn bounds_tighten_as_the_sample_grows() {
        let q = 4.0;
        let n_gamma = 100.0;
        // Same underlying revenue (cov proportional to |R|).
        let ub_small = revenue_upper_bound(50.0, q, n_gamma, 1_000);
        let ub_large = revenue_upper_bound(5_000.0, q, n_gamma, 100_000);
        let lb_small = revenue_lower_bound(50.0, q, n_gamma, 1_000);
        let lb_large = revenue_lower_bound(5_000.0, q, n_gamma, 100_000);
        assert!(ub_large - lb_large < ub_small - lb_small);
    }

    #[test]
    fn degenerate_sample_sizes_are_handled() {
        assert!(revenue_upper_bound(0.0, 1.0, 10.0, 0).is_infinite());
        assert_eq!(revenue_lower_bound(0.0, 1.0, 10.0, 0), 0.0);
    }

    #[test]
    fn epsilon_split_is_consistent() {
        let p = params();
        let (eps, delta, lam) = (0.1, 0.01, 0.25);
        let e2 = epsilon_two(&p, eps, delta, lam);
        assert!(e2 > 0.0 && e2 < eps);
    }

    #[test]
    fn failure_exponent_grows_with_iterations_and_ads() {
        assert!(failure_exponent(10, 20, 0.01) > failure_exponent(10, 10, 0.01));
        assert!(failure_exponent(20, 10, 0.01) > failure_exponent(5, 10, 0.01));
    }
}
