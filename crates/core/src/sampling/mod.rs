//! Sampling-setting machinery of Section 4: the RR-set revenue estimator,
//! sample-size/concentration bounds, and the one-batch and progressive
//! (RMA) algorithms.

pub mod bounds;
pub mod estimator;
pub mod rma;

pub use bounds::BoundParams;
pub use estimator::{RrRevenueEstimator, RrSeedState};
pub use rma::{seek_ub, RmaConfig, RmaResult};

#[allow(deprecated)]
pub use rma::{one_batch, rm_without_oracle};
