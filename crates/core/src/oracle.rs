//! Revenue oracles.
//!
//! Section 3 of the paper assumes an oracle returning the exact influence
//! spread of any seed set; Section 4 replaces it with RR-set estimates. All
//! algorithms in this crate are generic over the [`RevenueOracle`] trait so
//! the same `Greedy` / `ThresholdGreedy` / `Search` code runs in both modes,
//! exactly as Algorithm 6 reuses `RM_with_Oracle` on the sampled estimator.
//!
//! The trait is *incremental*: greedy algorithms grow one seed set per
//! advertiser, so an oracle exposes a per-advertiser [`RevenueOracle::State`]
//! that caches whatever it needs (covered RR-sets, cached spread, …) to
//! answer marginal-gain queries quickly.

use crate::problem::RmInstance;
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use rmsa_diffusion::exact::ExactOracle;
use rmsa_diffusion::{estimate_spread, AdId, PropagationModel};
use rmsa_graph::{DirectedGraph, NodeId};

/// Incremental evaluation state for one advertiser's growing seed set.
pub trait SeedState: Clone {
    /// The advertiser this state belongs to.
    fn ad(&self) -> AdId;
    /// The seeds committed so far, in insertion order.
    fn seeds(&self) -> &[NodeId];
    /// Revenue `π_i(seeds)` of the committed seeds.
    fn revenue(&self) -> f64;
    /// Whether `u` is already committed.
    fn contains(&self, u: NodeId) -> bool {
        self.seeds().contains(&u)
    }
}

/// An oracle able to evaluate (estimates of) the revenue function
/// `π_i(·) = cpe(i) · σ_i(·)`.
pub trait RevenueOracle {
    /// Incremental per-advertiser state.
    type State: SeedState;

    /// Number of advertisers.
    fn num_ads(&self) -> usize;
    /// Number of nodes in the underlying graph.
    fn num_nodes(&self) -> usize;
    /// Revenue of an explicit seed set, evaluated from scratch.
    fn revenue(&self, ad: AdId, seeds: &[NodeId]) -> f64;
    /// Revenue of a single node; hot path for initialising greedy heaps.
    fn singleton_revenue(&self, ad: AdId, u: NodeId) -> f64 {
        self.revenue(ad, &[u])
    }
    /// Fresh empty state for advertiser `ad`.
    fn new_state(&self, ad: AdId) -> Self::State;
    /// Marginal gain `π_i(u | state.seeds)`.
    fn marginal_gain(&self, state: &Self::State, u: NodeId) -> f64;
    /// Commit `u` into the state.
    fn add_seed(&self, state: &mut Self::State, u: NodeId);

    /// Total revenue `π(S⃗)` of a full allocation.
    fn allocation_revenue(&self, allocation: &[Vec<NodeId>]) -> f64 {
        allocation
            .iter()
            .enumerate()
            .map(|(ad, s)| self.revenue(ad, s))
            .sum()
    }
}

/// Marginal rate `ζ_i(u | S_i)` (Eq. 2): marginal revenue over marginal
/// payment (seed cost plus the extra engagements the advertiser pays for).
pub fn marginal_rate(marginal_gain: f64, seed_cost: f64) -> f64 {
    let denom = seed_cost + marginal_gain;
    if denom <= 0.0 {
        0.0
    } else {
        marginal_gain / denom
    }
}

/// Generic seed-set state that caches the seeds and their revenue; used by
/// the exact and Monte-Carlo oracles which recompute revenue per query.
#[derive(Clone, Debug)]
pub struct CachedSeedState {
    ad: AdId,
    seeds: Vec<NodeId>,
    revenue: f64,
}

impl SeedState for CachedSeedState {
    fn ad(&self) -> AdId {
        self.ad
    }
    fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }
    fn revenue(&self) -> f64 {
        self.revenue
    }
}

/// Exact oracle for tiny graphs, backed by possible-world enumeration.
///
/// Used to drive the Section-3 algorithms in tests/examples and to validate
/// the estimators; the interior mutex only guards the exact oracle's
/// probability cache.
pub struct ExactRevenueOracle<'g, M: PropagationModel> {
    inner: Mutex<ExactOracle<'g, M>>,
    cpe: Vec<f64>,
    num_nodes: usize,
}

impl<'g, M: PropagationModel> ExactRevenueOracle<'g, M> {
    /// Build an exact revenue oracle from a graph, a propagation model, and
    /// the instance whose CPE values convert spread into revenue.
    pub fn new(graph: &'g DirectedGraph, model: &'g M, instance: &RmInstance) -> Self {
        assert_eq!(instance.num_ads(), model.num_ads());
        ExactRevenueOracle {
            inner: Mutex::new(ExactOracle::new(graph, model)),
            cpe: instance.cpe_values(),
            num_nodes: graph.num_nodes(),
        }
    }
}

impl<'g, M: PropagationModel> RevenueOracle for ExactRevenueOracle<'g, M> {
    type State = CachedSeedState;

    fn num_ads(&self) -> usize {
        self.cpe.len()
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn revenue(&self, ad: AdId, seeds: &[NodeId]) -> f64 {
        self.cpe[ad] * self.inner.lock().spread(ad, seeds)
    }

    fn new_state(&self, ad: AdId) -> CachedSeedState {
        CachedSeedState {
            ad,
            seeds: Vec::new(),
            revenue: 0.0,
        }
    }

    fn marginal_gain(&self, state: &CachedSeedState, u: NodeId) -> f64 {
        let mut with = state.seeds.clone();
        with.push(u);
        (self.revenue(state.ad, &with) - state.revenue).max(0.0)
    }

    fn add_seed(&self, state: &mut CachedSeedState, u: NodeId) {
        state.seeds.push(u);
        state.revenue = self.revenue(state.ad, &state.seeds);
    }
}

/// Monte-Carlo revenue oracle: spreads are averaged over a fixed number of
/// independent cascades. Estimates are deterministic for a fixed
/// `(base_seed, ad, seed set)` because each query derives its RNG stream
/// from a hash of the query.
pub struct McRevenueOracle<'g, M: PropagationModel> {
    graph: &'g DirectedGraph,
    model: &'g M,
    cpe: Vec<f64>,
    num_simulations: usize,
    base_seed: u64,
}

impl<'g, M: PropagationModel> McRevenueOracle<'g, M> {
    /// Build a Monte-Carlo oracle performing `num_simulations` cascades per
    /// query.
    pub fn new(
        graph: &'g DirectedGraph,
        model: &'g M,
        instance: &RmInstance,
        num_simulations: usize,
        base_seed: u64,
    ) -> Self {
        assert!(num_simulations > 0);
        assert_eq!(instance.num_ads(), model.num_ads());
        McRevenueOracle {
            graph,
            model,
            cpe: instance.cpe_values(),
            num_simulations,
            base_seed,
        }
    }

    fn query_rng(&self, ad: AdId, seeds: &[NodeId]) -> Pcg64Mcg {
        // Cheap FNV-style mix so repeated queries of the same set agree.
        let mut h = self.base_seed ^ 0xcbf2_9ce4_8422_2325;
        h = h.wrapping_mul(0x1000_0000_01b3).wrapping_add(ad as u64);
        for &s in seeds {
            h ^= s as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Pcg64Mcg::seed_from_u64(h)
    }
}

impl<'g, M: PropagationModel> RevenueOracle for McRevenueOracle<'g, M> {
    type State = CachedSeedState;

    fn num_ads(&self) -> usize {
        self.cpe.len()
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn revenue(&self, ad: AdId, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let mut rng = self.query_rng(ad, seeds);
        self.cpe[ad]
            * estimate_spread(
                self.graph,
                self.model,
                ad,
                seeds,
                self.num_simulations,
                &mut rng,
            )
    }

    fn new_state(&self, ad: AdId) -> CachedSeedState {
        CachedSeedState {
            ad,
            seeds: Vec::new(),
            revenue: 0.0,
        }
    }

    fn marginal_gain(&self, state: &CachedSeedState, u: NodeId) -> f64 {
        let mut with = state.seeds.clone();
        with.push(u);
        (self.revenue(state.ad, &with) - state.revenue).max(0.0)
    }

    fn add_seed(&self, state: &mut CachedSeedState, u: NodeId) {
        state.seeds.push(u);
        state.revenue = self.revenue(state.ad, &state.seeds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::graph_from_edges;

    fn chain_instance() -> (DirectedGraph, UniformIc, RmInstance) {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let m = UniformIc::new(2, 0.5);
        let inst = RmInstance::try_new(
            3,
            vec![
                Advertiser::try_new(10.0, 1.0).unwrap(),
                Advertiser::try_new(10.0, 2.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 3]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn exact_oracle_scales_spread_by_cpe() {
        let (g, m, inst) = chain_instance();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        // σ({0}) = 1 + 0.5 + 0.25 = 1.75.
        assert!((o.revenue(0, &[0]) - 1.75).abs() < 1e-9);
        assert!((o.revenue(1, &[0]) - 3.5).abs() < 1e-9);
        assert!((o.singleton_revenue(0, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_oracle_incremental_state_tracks_revenue() {
        let (g, m, inst) = chain_instance();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let mut st = o.new_state(0);
        assert_eq!(st.revenue(), 0.0);
        let gain = o.marginal_gain(&st, 2);
        assert!((gain - 1.0).abs() < 1e-9);
        o.add_seed(&mut st, 2);
        assert!(st.contains(2));
        let gain0 = o.marginal_gain(&st, 0);
        // Adding 0 to {2}: spread({0,2}) = 1.75 + 1 - 0.25 (node 2 already
        // counted) = 2.5, so the marginal is 1.5.
        assert!((gain0 - 1.5).abs() < 1e-9, "gain0 = {gain0}");
        o.add_seed(&mut st, 0);
        assert!((st.revenue() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn mc_oracle_is_deterministic_and_close_to_exact() {
        let (g, m, inst) = chain_instance();
        let exact = ExactRevenueOracle::new(&g, &m, &inst);
        let mc = McRevenueOracle::new(&g, &m, &inst, 20_000, 11);
        let a = mc.revenue(0, &[0]);
        let b = mc.revenue(0, &[0]);
        assert_eq!(a, b, "repeated queries must agree");
        assert!((a - exact.revenue(0, &[0])).abs() < 0.05);
    }

    #[test]
    fn marginal_rate_matches_definition() {
        assert!((marginal_rate(3.0, 1.0) - 0.75).abs() < 1e-12);
        assert_eq!(marginal_rate(0.0, 0.0), 0.0);
    }

    #[test]
    fn allocation_revenue_sums_per_ad_revenue() {
        let (g, m, inst) = chain_instance();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let alloc = vec![vec![0], vec![2]];
        let expect = o.revenue(0, &[0]) + o.revenue(1, &[2]);
        assert!((o.allocation_revenue(&alloc) - expect).abs() < 1e-9);
    }
}
