//! Unified error type of the public API.
//!
//! Every fallible entry point — instance construction, configuration
//! validation, and [`crate::solver::Solver::solve`] — reports failures
//! through [`RmError`] instead of panicking, so a service embedding the
//! solvers can reject a bad request without crashing a worker.

use std::fmt;

/// Errors reported by instance constructors, configuration validation and
/// the [`crate::solver`] API.
#[derive(Clone, Debug, PartialEq)]
pub enum RmError {
    /// A scalar parameter lies outside its admissible range (e.g. `ε ∉
    /// (0, λ)`, `δ ∉ (0, 1)`, `ϱ ∉ (0, 1)`, a non-positive budget).
    InvalidParameter {
        /// Parameter name as it appears in the paper / config struct.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable admissible range, e.g. `"(0, 1)"`.
        constraint: String,
    },
    /// Two components disagree on a dimension (cost-table width, advertiser
    /// count, graph size).
    DimensionMismatch {
        /// What is being measured, e.g. `"cost table nodes"`.
        what: &'static str,
        /// The expected dimension.
        expected: usize,
        /// The dimension actually supplied.
        actual: usize,
    },
    /// An instance without a single advertiser.
    NoAdvertisers,
    /// The [`crate::solver::SolveContext`] was assembled inconsistently
    /// (e.g. a model parameterised for a different number of ads than the
    /// instance).
    InvalidContext(String),
}

impl RmError {
    /// Convenience constructor for [`RmError::InvalidParameter`].
    pub fn invalid_parameter(
        name: &'static str,
        value: f64,
        constraint: impl Into<String>,
    ) -> Self {
        RmError::InvalidParameter {
            name,
            value,
            constraint: constraint.into(),
        }
    }
}

impl fmt::Display for RmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "parameter {name} = {value} outside {constraint}")
            }
            RmError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected {expected}, got {actual}"),
            RmError::NoAdvertisers => write!(f, "at least one advertiser required"),
            RmError::InvalidContext(msg) => write!(f, "invalid solve context: {msg}"),
        }
    }
}

impl std::error::Error for RmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RmError::invalid_parameter("epsilon", 1.5, "(0, λ = 0.30)");
        assert_eq!(
            e.to_string(),
            "parameter epsilon = 1.5 outside (0, λ = 0.30)"
        );
        let d = RmError::DimensionMismatch {
            what: "cost table nodes",
            expected: 5,
            actual: 2,
        };
        assert!(d.to_string().contains("expected 5, got 2"));
        assert!(RmError::NoAdvertisers.to_string().contains("advertiser"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(RmError::NoAdvertisers);
        assert!(e.source().is_none());
    }
}
