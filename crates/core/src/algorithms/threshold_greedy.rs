//! Algorithms 2 and 3: `ThresholdGreedy(γ)` and `Fill(S⃗)`.
//!
//! `ThresholdGreedy` selects `(node, advertiser)` elements in decreasing
//! order of marginal *gain* (as CA-Greedy does), but only accepts an element
//! whose marginal *rate* is at least `γ / B_i` — the threshold rules out
//! elements whose revenue-per-budget-unit is too poor, which is what gives
//! Theorem 3.2 its guarantee. The first element that would overflow an
//! advertiser's budget becomes that advertiser's stopple node `D_i`, and the
//! advertiser's budget is considered depleted.
//!
//! After the main loop, if exactly one advertiser's budget was depleted, a
//! single-advertiser `Greedy` run over the unassigned nodes provides the
//! fallback set `A_i` needed by the analysis. Finally `Fill` spends any
//! remaining budget greedily by marginal rate.

use crate::algorithms::greedy::greedy_single;
use crate::oracle::{marginal_rate, RevenueOracle, SeedState};
use crate::problem::{Allocation, RmInstance};
use crate::util::LazyQueue;
use rmsa_diffusion::AdId;
use rmsa_graph::NodeId;

/// Result of `ThresholdGreedy(γ)`.
#[derive(Clone, Debug)]
pub struct ThresholdGreedyOutcome {
    /// The final allocation `S⃗*` (after the `Fill` pass).
    pub allocation: Allocation,
    /// Advertisers whose budgets were depleted during the main loop (`I`).
    pub depleted: Vec<AdId>,
    /// `b = |I|`.
    pub b: usize,
}

/// Run `ThresholdGreedy(γ)` (Algorithm 2), including the final `Fill` pass.
pub fn threshold_greedy<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    gamma: f64,
) -> ThresholdGreedyOutcome {
    let h = instance.num_ads();
    let n = instance.num_nodes;
    assert_eq!(oracle.num_ads(), h);
    assert!(gamma >= 0.0, "threshold must be non-negative");

    let mut states: Vec<O::State> = (0..h).map(|i| oracle.new_state(i)).collect();
    let mut versions = vec![0u32; h];
    let mut cost_sums = vec![0.0f64; h];
    let mut stopples: Vec<Option<NodeId>> = vec![None; h];
    let mut assigned = vec![false; n];
    let mut depleted_count = 0usize;

    // Line 1: M holds every singleton-feasible (node, ad) pair, keyed by the
    // marginal gain π_j(v | S_j), initially the singleton revenue.
    let mut queue = LazyQueue::with_capacity(n * h);
    for ad in 0..h {
        let budget = instance.budget(ad);
        for v in 0..n as NodeId {
            let rev = oracle.singleton_revenue(ad, v);
            let cost = instance.cost(ad, v);
            if cost + rev <= budget {
                queue.push(rev, v, ad, 0);
            }
        }
    }

    // Lines 3–8: greedy main loop over marginal gains with the rate
    // threshold, the partition constraint, and the budget check.
    while depleted_count < h {
        let Some(entry) = queue.pop() else { break };
        let ad = entry.ad;
        if stopples[ad].is_some() {
            // Line 5, second clause: this advertiser's budget is depleted.
            continue;
        }
        if assigned[entry.node as usize] {
            // Line 6: node already endorses some ad.
            continue;
        }
        let gain = oracle.marginal_gain(&states[ad], entry.node);
        if entry.version != versions[ad] {
            // Stale upper bound: refresh and re-queue (CELF).
            queue.push(gain, entry.node, ad, versions[ad]);
            continue;
        }
        let cost = instance.cost(ad, entry.node);
        let rate = marginal_rate(gain, cost);
        if rate < gamma / instance.budget(ad) {
            // Line 5, first clause: marginal rate below the threshold.
            continue;
        }
        let budget = instance.budget(ad);
        if cost_sums[ad] + cost + states[ad].revenue() + gain <= budget {
            // Line 7: feasible — commit.
            oracle.add_seed(&mut states[ad], entry.node);
            cost_sums[ad] += cost;
            versions[ad] += 1;
            assigned[entry.node as usize] = true;
        } else {
            // Line 8: stopple node; the advertiser's budget is depleted.
            stopples[ad] = Some(entry.node);
            assigned[entry.node as usize] = true;
            depleted_count += 1;
        }
    }

    let depleted: Vec<AdId> = (0..h).filter(|&i| stopples[i].is_some()).collect();
    let b = depleted.len();

    // Lines 9–10: if exactly one advertiser depleted its budget, run the
    // single-advertiser Greedy over the nodes not claimed by any S_j.
    let mut fallback: Vec<Vec<NodeId>> = vec![Vec::new(); h];
    let mut fallback_revenue = vec![0.0f64; h];
    if b == 1 {
        let ad = depleted[0];
        let mut in_some_s = vec![false; n];
        for st in &states {
            for &u in st.seeds() {
                in_some_s[u as usize] = true;
            }
        }
        let candidates: Vec<NodeId> = (0..n as NodeId)
            .filter(|&u| !in_some_s[u as usize])
            .collect();
        let out = greedy_single(instance, oracle, ad, &candidates);
        fallback_revenue[ad] = out.best_revenue();
        fallback[ad] = out.best();
    }

    // Line 11: per advertiser keep the best of {S_j, D_j, A_j}.
    let mut chosen = Allocation::empty(h);
    for ad in 0..h {
        let s_rev = states[ad].revenue();
        let d_rev = stopples[ad].map_or(0.0, |u| oracle.singleton_revenue(ad, u));
        let a_rev = fallback_revenue[ad];
        if a_rev >= s_rev && a_rev >= d_rev && !fallback[ad].is_empty() {
            chosen.seed_sets[ad] = fallback[ad].clone();
        } else if let (Some(u), true) = (stopples[ad], d_rev > s_rev) {
            // d_rev > 0 implies a stopple; if it is somehow absent the
            // branch falls through to S_j rather than asserting.
            chosen.seed_sets[ad] = vec![u];
        } else {
            chosen.seed_sets[ad] = states[ad].seeds().to_vec();
        }
    }
    // Taking the best of {S_j, D_j, A_j} per advertiser can re-introduce a
    // node for two advertisers (e.g. a stopple of one ad was also selected
    // by another). Resolve conflicts by keeping the node for the advertiser
    // that gains more from it — the guarantee of Theorem 3.2 is stated for
    // the revenue of the better of the candidates, so deduplication can only
    // be applied to the lower-value duplicates.
    dedup_allocation(oracle, &mut chosen);

    // Line 12: spend remaining budget.
    let allocation = fill(instance, oracle, chosen);

    ThresholdGreedyOutcome {
        allocation,
        depleted,
        b,
    }
}

/// Remove duplicate node assignments across advertisers, keeping each node
/// for the advertiser with the larger singleton revenue.
fn dedup_allocation<O: RevenueOracle>(oracle: &O, allocation: &mut Allocation) {
    use std::collections::HashMap;
    let mut owner: HashMap<NodeId, AdId> = HashMap::new();
    for ad in 0..allocation.num_ads() {
        for &u in &allocation.seed_sets[ad] {
            match owner.get(&u) {
                None => {
                    owner.insert(u, ad);
                }
                Some(&other) => {
                    let keep_new =
                        oracle.singleton_revenue(ad, u) > oracle.singleton_revenue(other, u);
                    if keep_new {
                        owner.insert(u, ad);
                    }
                }
            }
        }
    }
    for ad in 0..allocation.num_ads() {
        allocation.seed_sets[ad].retain(|&u| owner.get(&u) == Some(&ad));
    }
}

/// Algorithm 3: `Fill(S⃗)` — greedily add more seeds by marginal rate until
/// no advertiser can afford another feasible node.
pub fn fill<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    allocation: Allocation,
) -> Allocation {
    let h = instance.num_ads();
    let n = instance.num_nodes;
    let mut states: Vec<O::State> = (0..h).map(|i| oracle.new_state(i)).collect();
    let mut cost_sums = vec![0.0f64; h];
    let mut assigned = vec![false; n];
    for (ad, seeds) in allocation.seed_sets.iter().enumerate() {
        for &u in seeds {
            oracle.add_seed(&mut states[ad], u);
            cost_sums[ad] += instance.cost(ad, u);
            assigned[u as usize] = true;
        }
    }
    let mut versions = vec![0u32; h];

    // Line 1: all singleton-feasible pairs, keyed by marginal rate.
    let mut queue = LazyQueue::with_capacity(n * h);
    for ad in 0..h {
        let budget = instance.budget(ad);
        for v in 0..n as NodeId {
            if assigned[v as usize] {
                continue;
            }
            let rev = oracle.singleton_revenue(ad, v);
            let cost = instance.cost(ad, v);
            if cost + rev <= budget {
                // Key by the rate w.r.t. the current S_j (upper-bounded by
                // the singleton rate).
                let gain = oracle.marginal_gain(&states[ad], v);
                queue.push(marginal_rate(gain, cost), v, ad, versions[ad]);
            }
        }
    }

    while let Some(entry) = queue.pop() {
        let ad = entry.ad;
        if assigned[entry.node as usize] {
            continue;
        }
        let gain = oracle.marginal_gain(&states[ad], entry.node);
        let cost = instance.cost(ad, entry.node);
        let rate = marginal_rate(gain, cost);
        if entry.version != versions[ad] {
            queue.push(rate, entry.node, ad, versions[ad]);
            continue;
        }
        if cost_sums[ad] + cost + states[ad].revenue() + gain <= instance.budget(ad) {
            oracle.add_seed(&mut states[ad], entry.node);
            cost_sums[ad] += cost;
            versions[ad] += 1;
            assigned[entry.node as usize] = true;
        }
    }

    Allocation {
        seed_sets: states.iter().map(|s| s.seeds().to_vec()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactRevenueOracle;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::{graph_from_edges, DirectedGraph};

    /// Two disjoint stars: hub 0 over nodes 2..=5 (spread 5), hub 1 over
    /// nodes 6..=8 (spread 4); nodes 9..11 isolated.
    fn two_star_graph() -> DirectedGraph {
        graph_from_edges(
            12,
            &[(0, 2), (0, 3), (0, 4), (0, 5), (1, 6), (1, 7), (1, 8)],
        )
    }

    fn instance(budgets: &[f64]) -> RmInstance {
        RmInstance::try_new(
            12,
            budgets
                .iter()
                .map(|&b| Advertiser::try_new(b, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; 12]),
        )
        .unwrap()
    }

    #[test]
    fn partition_constraint_is_respected() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[20.0, 20.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = threshold_greedy(&inst, &o, 0.0);
        assert!(out.allocation.is_disjoint());
    }

    #[test]
    fn budget_feasibility_holds_for_every_advertiser() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[8.0, 6.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = threshold_greedy(&inst, &o, 1.0);
        for ad in 0..2 {
            let seeds = out.allocation.seeds(ad);
            let total = o.revenue(ad, seeds) + inst.set_cost(ad, seeds);
            assert!(
                total <= inst.budget(ad) + 1e-9,
                "ad {ad} spends {total} of budget {}",
                inst.budget(ad)
            );
        }
    }

    #[test]
    fn zero_threshold_selects_by_pure_marginal_gain() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[20.0, 20.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = threshold_greedy(&inst, &o, 0.0);
        // The two hubs must be allocated (to different advertisers), since
        // they have the highest marginal gains and budgets are ample.
        let all: Vec<NodeId> = out.allocation.seed_sets.iter().flatten().copied().collect();
        assert!(all.contains(&0), "hub 0 must be seeded: {all:?}");
        assert!(all.contains(&1), "hub 1 must be seeded: {all:?}");
    }

    #[test]
    fn huge_threshold_selects_nothing() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[20.0, 20.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        // γ / B = 50 / 20 = 2.5 > any marginal rate (rates are < 1), and the
        // Fill pass is rate-based, not thresholded, so it still adds seeds;
        // the main loop itself must deplete nobody.
        let out = threshold_greedy(&inst, &o, 50.0);
        assert_eq!(out.b, 0);
    }

    #[test]
    fn depleted_advertisers_are_reported() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        // Tiny budgets: both advertisers deplete almost immediately.
        let inst = instance(&[3.0, 3.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = threshold_greedy(&inst, &o, 0.5);
        assert_eq!(out.b, out.depleted.len());
        for ad in &out.depleted {
            assert!(*ad < 2);
        }
    }

    #[test]
    fn fill_extends_a_partial_allocation_without_violating_budgets() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[10.0, 10.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let mut start = Allocation::empty(2);
        start.seed_sets[0] = vec![9]; // an isolated node, revenue 1
        let filled = fill(&inst, &o, start);
        assert!(filled.seed_sets[0].contains(&9));
        assert!(filled.total_seeds() > 1, "fill should add more seeds");
        for ad in 0..2 {
            let seeds = filled.seeds(ad);
            let total = o.revenue(ad, seeds) + inst.set_cost(ad, seeds);
            assert!(total <= inst.budget(ad) + 1e-9);
        }
        assert!(filled.is_disjoint());
    }

    #[test]
    fn fill_never_removes_existing_seeds() {
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[6.0, 6.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let mut start = Allocation::empty(2);
        start.seed_sets[0] = vec![0];
        start.seed_sets[1] = vec![1];
        let filled = fill(&inst, &o, start);
        assert!(filled.seed_sets[0].contains(&0));
        assert!(filled.seed_sets[1].contains(&1));
    }

    #[test]
    fn single_depletion_triggers_the_fallback_greedy() {
        // Advertiser 0 has a tiny budget and will deplete; advertiser 1 has
        // a huge budget and never does, so b == 1 exercises lines 9–10.
        let g = two_star_graph();
        let m = UniformIc::new(2, 1.0);
        let inst = instance(&[4.0, 50.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = threshold_greedy(&inst, &o, 0.5);
        if out.b == 1 {
            let ad = out.depleted[0];
            assert!(!out.allocation.seeds(ad).is_empty());
        }
        assert!(out.allocation.is_disjoint());
    }
}
