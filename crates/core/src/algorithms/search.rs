//! Algorithm 4: `Search(τ, b_min)` — binary search for a good threshold γ.
//!
//! `ThresholdGreedy`'s quality depends on γ (Theorem 3.2): small γ favours
//! high-gain elements, large γ favours high-rate elements. `Search` probes
//! thresholds over `[0, (1+τ)·γ_max]`, keeping the best allocation it sees,
//! while steering the binary search with `b_min`: an iteration whose number
//! of depleted advertisers `b` is at least `b_min` becomes the new left
//! endpoint, otherwise the new right endpoint. The loop stops when the
//! interval is relatively short (`(1+τ)γ_1 ≥ γ_2`) or γ_2 has become
//! negligible (`γ_2 ≤ min_i cpe(i) / (h+6)`).

use crate::algorithms::threshold_greedy::threshold_greedy;
use crate::oracle::{marginal_rate, RevenueOracle};
use crate::problem::{Allocation, RmInstance};
use rmsa_graph::NodeId;

/// Hard cap on binary-search iterations; the theoretical bound is
/// `O(log(h·γ_max / min_i cpe(i)))`, which is far below this.
const MAX_SEARCH_ITERATIONS: usize = 128;

/// Everything `Search` produces: the best allocation found plus the two
/// endpoint solutions `(T⃗*_1, b_1, γ_1)` and `(T⃗*_2, b_2, γ_2)` that
/// `SeekUB` (Algorithm 7) needs to derive an upper bound on OPT.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best allocation over every probed threshold.
    pub best: Allocation,
    /// Revenue of `best` under the oracle used for the search.
    pub best_revenue: f64,
    /// Left-endpoint solution `T⃗*_1` (threshold γ_1, depleted ≥ b_min).
    pub t1: Option<Allocation>,
    /// Number of depleted advertisers of `t1`.
    pub b1: usize,
    /// Left endpoint γ_1.
    pub gamma1: f64,
    /// Right-endpoint solution `T⃗*_2` (threshold γ_2, depleted < b_min).
    pub t2: Option<Allocation>,
    /// Number of depleted advertisers of `t2`.
    pub b2: usize,
    /// Right endpoint γ_2.
    pub gamma2: f64,
    /// The `b_min` used.
    pub b_min: usize,
    /// Number of `ThresholdGreedy` invocations.
    pub iterations: usize,
}

/// `γ_max = max { B_j · ζ_j(v | ∅) : v ∈ V, j ∈ [h] }` (Eq. 6).
pub fn gamma_max<O: RevenueOracle>(instance: &RmInstance, oracle: &O) -> f64 {
    let mut best = 0.0f64;
    for ad in 0..instance.num_ads() {
        let budget = instance.budget(ad);
        for v in 0..instance.num_nodes as NodeId {
            let rev = oracle.singleton_revenue(ad, v);
            let rate = marginal_rate(rev, instance.cost(ad, v));
            best = best.max(budget * rate);
        }
    }
    best
}

/// Run `Search(τ, b_min)` (Algorithm 4).
pub fn search<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    tau: f64,
    b_min: usize,
) -> SearchOutcome {
    assert!(tau > 0.0 && tau < 1.0, "tau must lie in (0,1)");
    assert!(b_min == 1 || b_min == 2, "b_min must be 1 or 2");
    let h = instance.num_ads();
    let min_cpe = (0..h)
        .map(|i| instance.cpe(i))
        .fold(f64::INFINITY, f64::min);
    let gmax = gamma_max(instance, oracle);

    let mut gamma1 = 0.0f64;
    let mut gamma2 = (1.0 + tau) * gmax;
    let mut gamma = gamma1;
    let mut t1: Option<Allocation> = None;
    let mut t2: Option<Allocation> = None;
    let mut b1 = 0usize;
    let mut b2 = 0usize;
    let mut best: Option<Allocation> = None;
    let mut best_revenue = f64::NEG_INFINITY;
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let outcome = threshold_greedy(instance, oracle, gamma);
        let revenue = oracle.allocation_revenue(&outcome.allocation.seed_sets);
        if revenue > best_revenue {
            best_revenue = revenue;
            best = Some(outcome.allocation.clone());
        }
        if outcome.b >= b_min {
            t1 = Some(outcome.allocation);
            b1 = outcome.b;
            gamma1 = gamma;
        } else {
            t2 = Some(outcome.allocation);
            b2 = outcome.b;
            gamma2 = gamma;
        }
        gamma = (gamma1 + gamma2) / 2.0;
        let interval_small = (1.0 + tau) * gamma1 >= gamma2;
        let gamma2_negligible = gamma2 <= min_cpe / (h as f64 + 6.0);
        if interval_small || gamma2_negligible || iterations >= MAX_SEARCH_ITERATIONS {
            break;
        }
    }

    SearchOutcome {
        best: best.unwrap_or_else(|| Allocation::empty(h)),
        best_revenue: best_revenue.max(0.0),
        t1,
        b1,
        gamma1,
        t2,
        b2,
        gamma2,
        b_min,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactRevenueOracle;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::graph_from_edges;

    fn setup(budgets: &[f64]) -> (rmsa_graph::DirectedGraph, UniformIc, RmInstance) {
        let g = graph_from_edges(
            12,
            &[(0, 2), (0, 3), (0, 4), (0, 5), (1, 6), (1, 7), (1, 8)],
        );
        let m = UniformIc::new(budgets.len(), 1.0);
        let inst = RmInstance::try_new(
            12,
            budgets
                .iter()
                .map(|&b| Advertiser::try_new(b, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; 12]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn gamma_max_matches_hand_computation() {
        let (g, m, inst) = setup(&[10.0, 5.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        // Best singleton rate: hub 0 with revenue 5, cost 1 → 5/6; budget 10
        // gives 50/6 ≈ 8.33. Advertiser 1: same node, budget 5 → 25/6.
        let gm = gamma_max(&inst, &o);
        assert!((gm - 50.0 / 6.0).abs() < 1e-9, "gamma_max = {gm}");
    }

    #[test]
    fn search_returns_a_feasible_disjoint_allocation() {
        let (g, m, inst) = setup(&[9.0, 7.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = search(&inst, &o, 0.1, 1);
        assert!(out.best.is_disjoint());
        for ad in 0..2 {
            let seeds = out.best.seeds(ad);
            let spent = o.revenue(ad, seeds) + inst.set_cost(ad, seeds);
            assert!(spent <= inst.budget(ad) + 1e-9);
        }
        assert!(out.iterations >= 1);
        assert!(out.best_revenue > 0.0);
    }

    #[test]
    fn search_tracks_endpoint_solutions_consistently() {
        let (g, m, inst) = setup(&[6.0, 6.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = search(&inst, &o, 0.1, 1);
        if out.t1.is_some() {
            assert!(out.b1 >= 1, "t1 must have depleted at least b_min budgets");
            assert!(out.gamma1 <= out.gamma2 + 1e-12);
        }
        if out.t2.is_some() {
            assert!(out.b2 < 1 || out.t1.is_none());
        }
    }

    #[test]
    fn best_revenue_is_at_least_every_endpoint_revenue() {
        let (g, m, inst) = setup(&[8.0, 8.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = search(&inst, &o, 0.2, 1);
        if let Some(t1) = &out.t1 {
            assert!(out.best_revenue + 1e-9 >= o.allocation_revenue(&t1.seed_sets));
        }
        if let Some(t2) = &out.t2 {
            assert!(out.best_revenue + 1e-9 >= o.allocation_revenue(&t2.seed_sets));
        }
    }

    #[test]
    fn search_terminates_within_the_iteration_cap() {
        let (g, m, inst) = setup(&[100.0, 100.0]);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = search(&inst, &o, 0.05, 2);
        assert!(out.iterations <= MAX_SEARCH_ITERATIONS);
    }
}
