//! Algorithm 1: `Greedy(U, i)` — the single-advertiser greedy with a
//! "stopple node", achieving a 1/3-approximation (Theorem 3.1).
//!
//! The algorithm repeatedly selects the candidate with the largest marginal
//! rate `ζ_i(v | S_i)`, adds it to `S_i` while the submodular-knapsack
//! constraint `c_i(S_i) + π_i(S_i) ≤ B_i` still holds, and stores the first
//! violating node as the singleton `D_i`. The better of `S_i` and `D_i` is
//! returned. Selection uses CELF-style lazy evaluation, which is sound
//! because both the marginal gain and the marginal rate are non-increasing
//! as `S_i` grows.

use crate::oracle::{marginal_rate, RevenueOracle, SeedState};
use crate::problem::RmInstance;
use crate::util::LazyQueue;
use rmsa_diffusion::AdId;
use rmsa_graph::NodeId;

/// Detailed outcome of `Greedy(U, i)`.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// The greedily grown feasible set `S_i`.
    pub selected: Vec<NodeId>,
    /// The stopple node `D_i`, if the budget was depleted.
    pub stopple: Option<NodeId>,
    /// Revenue of `selected`.
    pub selected_revenue: f64,
    /// Revenue of the stopple singleton (0 when there is none).
    pub stopple_revenue: f64,
}

impl GreedyOutcome {
    /// The final answer `S*_i = argmax_{X ∈ {S_i, D_i}} π_i(X)`.
    pub fn best(&self) -> Vec<NodeId> {
        match self.stopple {
            // A positive stopple revenue implies the stopple exists; the
            // match makes the absent case fall back to `selected` instead
            // of asserting it.
            Some(u) if self.stopple_revenue > self.selected_revenue => vec![u],
            _ => self.selected.clone(),
        }
    }

    /// Revenue of [`GreedyOutcome::best`].
    pub fn best_revenue(&self) -> f64 {
        self.selected_revenue.max(self.stopple_revenue)
    }
}

/// Run `Greedy(candidates, ad)` under `instance`'s budget and costs using
/// `oracle` for revenue evaluation. Returns the full outcome; callers that
/// only want `S*_i` use [`GreedyOutcome::best`].
pub fn greedy_single<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    ad: AdId,
    candidates: &[NodeId],
) -> GreedyOutcome {
    let budget = instance.budget(ad);
    let mut state = oracle.new_state(ad);
    let mut queue = LazyQueue::with_capacity(candidates.len());
    // Line 1: drop candidates that are infeasible even alone.
    for &v in candidates {
        let rev = oracle.singleton_revenue(ad, v);
        let cost = instance.cost(ad, v);
        if cost + rev > budget {
            continue;
        }
        queue.push(marginal_rate(rev, cost), v, ad, 0);
    }

    let mut version = 0u32;
    let mut cost_sum = 0.0f64;
    let mut stopple: Option<NodeId> = None;
    let mut stopple_revenue = 0.0;

    while let Some(entry) = queue.pop() {
        if stopple.is_some() {
            break;
        }
        if state.contains(entry.node) {
            continue;
        }
        let gain = oracle.marginal_gain(&state, entry.node);
        let cost = instance.cost(ad, entry.node);
        let rate = marginal_rate(gain, cost);
        if entry.version != version {
            // Stale key: re-insert with the fresh value (lazy greedy).
            queue.push(rate, entry.node, ad, version);
            continue;
        }
        // Fresh maximum-rate element: Lines 5–6.
        if cost_sum + cost + state.revenue() + gain <= budget {
            oracle.add_seed(&mut state, entry.node);
            cost_sum += cost;
            version += 1;
        } else {
            stopple = Some(entry.node);
            stopple_revenue = oracle.singleton_revenue(ad, entry.node);
        }
    }

    GreedyOutcome {
        selected: state.seeds().to_vec(),
        stopple,
        selected_revenue: state.revenue(),
        stopple_revenue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactRevenueOracle;
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::{generators::celebrity_graph, graph_from_edges, DirectedGraph};

    fn stars_instance(budget: f64) -> (DirectedGraph, UniformIc, RmInstance) {
        // Three disjoint stars with 4, 3, 2 leaves; deterministic edges.
        let g = graph_from_edges(
            12,
            &[
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 7),
                (1, 8),
                (1, 9),
                (2, 10),
                (2, 11),
            ],
        );
        let m = UniformIc::new(1, 1.0);
        let inst = RmInstance::try_new(
            12,
            vec![Advertiser::try_new(budget, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0; 12]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn selects_hubs_until_budget_depletes() {
        // Hub revenues: 5, 4, 3 (spread incl. self), each cost 1. With
        // budget 11 the greedy can afford hub 0 (pays 5 + 1) then hub 1
        // would need 4 + 1 more = 11, feasible exactly.
        let (g, m, inst) = stars_instance(11.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = greedy_single(&inst, &o, 0, &(0..12).collect::<Vec<_>>());
        assert_eq!(out.best(), vec![0, 1]);
        assert!((out.best_revenue() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn stopple_node_is_returned_when_better() {
        // Node 0 is isolated (revenue 1, cost 0.1, rate ~0.91); node 1 is a
        // hub over nodes 2..11 (revenue 11, cost 2, rate ~0.85). With budget
        // 13.5 the greedy picks node 0 first, then node 1 violates the
        // budget (0.1 + 2 + 1 + 11 > 13.5) and becomes the stopple — which
        // is worth more than everything selected so far, so it must win.
        let edges: Vec<(u32, u32)> = (2..12u32).map(|v| (1, v)).collect();
        let g = graph_from_edges(12, &edges);
        let m = UniformIc::new(1, 1.0);
        let mut costs = vec![100.0; 12];
        costs[0] = 0.1;
        costs[1] = 2.0;
        let inst = RmInstance::try_new(
            12,
            vec![Advertiser::try_new(13.5, 1.0).unwrap()],
            SeedCosts::Shared(costs),
        )
        .unwrap();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = greedy_single(&inst, &o, 0, &[0, 1]);
        assert_eq!(out.selected, vec![0]);
        assert_eq!(out.stopple, Some(1));
        assert_eq!(out.best(), vec![1]);
        assert!((out.best_revenue() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_singletons_are_filtered_out() {
        // Budget 2: every hub violates alone (revenue 3..5 + cost 1); only
        // leaves are kept and one leaf (1 + 1 = 2) fits.
        let (g, m, inst) = stars_instance(2.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = greedy_single(&inst, &o, 0, &(0..12).collect::<Vec<_>>());
        assert!(out.stopple.is_none() || out.stopple_revenue <= 2.0);
        for &s in &out.selected {
            assert!(s >= 3, "hubs cannot be selected under budget 2, got {s}");
        }
        let cost = inst.set_cost(0, &out.selected);
        assert!(cost + out.selected_revenue <= 2.0 + 1e-9);
    }

    #[test]
    fn respects_candidate_restriction() {
        let (g, m, inst) = stars_instance(20.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        // Only the second star's nodes are candidates.
        let out = greedy_single(&inst, &o, 0, &[1, 7, 8, 9]);
        assert!(out.best().iter().all(|&u| [1, 7, 8, 9].contains(&u)));
        assert!(out.best().contains(&1));
    }

    #[test]
    fn solution_is_budget_feasible_by_construction() {
        let g = celebrity_graph(4, 6);
        let m = UniformIc::new(1, 1.0);
        let inst = RmInstance::try_new(
            g.num_nodes(),
            vec![Advertiser::try_new(15.0, 1.0).unwrap()],
            SeedCosts::Shared(vec![2.0; g.num_nodes()]),
        )
        .unwrap();
        // The propagation is deterministic (p = 1), so a single Monte-Carlo
        // cascade per query is already exact.
        let o = crate::oracle::McRevenueOracle::new(&g, &m, &inst, 1, 0);
        let all: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let out = greedy_single(&inst, &o, 0, &all);
        let cost = inst.set_cost(0, &out.selected);
        assert!(cost + out.selected_revenue <= 15.0 + 1e-9);
    }

    #[test]
    fn empty_candidate_set_yields_empty_solution() {
        let (g, m, inst) = stars_instance(10.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let out = greedy_single(&inst, &o, 0, &[]);
        assert!(out.best().is_empty());
        assert_eq!(out.best_revenue(), 0.0);
    }

    #[test]
    fn one_third_approximation_holds_on_brute_forced_instances() {
        // Exhaustively verify π(S*) >= OPT / 3 on a small instance.
        let (g, m, inst) = stars_instance(7.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let all: Vec<NodeId> = (0..12).collect();
        let out = greedy_single(&inst, &o, 0, &all);
        // Brute force over all subsets of the three hubs plus leaves is too
        // big; restrict to subsets of hubs and single leaves which clearly
        // contains the optimum for this star structure.
        let mut opt = 0.0f64;
        let candidates: Vec<Vec<NodeId>> = vec![
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2],
        ];
        for set in candidates {
            let rev = o.revenue(0, &set);
            let cost = inst.set_cost(0, &set);
            if rev + cost <= 7.0 {
                opt = opt.max(rev);
            }
        }
        assert!(
            out.best_revenue() >= opt / 3.0 - 1e-9,
            "greedy {} vs opt {opt}",
            out.best_revenue()
        );
    }
}
