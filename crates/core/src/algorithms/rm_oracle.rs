//! Algorithm 5: `RM_with_Oracle(τ)` — dispatch on the number of advertisers.
//!
//! * `h = 1`  → `Greedy(V, 1)` (Theorem 3.1, ratio 1/3);
//! * `h ∈ {2,3}` → `Search(τ, 1)` (Theorem 3.4, ratio `1/(2(h+1)(1+τ))`);
//! * `h ≥ 4`  → `Search(τ, 2)` (Theorem 3.3, ratio `1/((h+6)(1+τ))`).

use crate::algorithms::greedy::greedy_single;
use crate::algorithms::search::{search, SearchOutcome};
use crate::approx::{b_min_for, lambda};
use crate::oracle::RevenueOracle;
use crate::problem::{Allocation, RmInstance};
use rmsa_graph::NodeId;

/// Output of `RM_with_Oracle`: the allocation plus, when `Search` was used,
/// its endpoint diagnostics (needed by `SeekUB` in the sampling setting).
#[derive(Clone, Debug)]
pub struct OracleSolution {
    /// The selected allocation `S⃗*`.
    pub allocation: Allocation,
    /// Revenue of the allocation under the oracle used for optimisation.
    pub revenue: f64,
    /// The `Search` diagnostics, absent when `h = 1`.
    pub search: Option<SearchOutcome>,
    /// The `b_min` parameter implied by `h` (meaningless for `h = 1`).
    pub b_min: usize,
    /// The approximation ratio λ of Theorem 3.5 for this `h` and `τ`.
    pub lambda: f64,
}

/// Run `RM_with_Oracle(τ)` (Algorithm 5).
pub fn rm_with_oracle<O: RevenueOracle>(
    instance: &RmInstance,
    oracle: &O,
    tau: f64,
) -> OracleSolution {
    let h = instance.num_ads();
    assert_eq!(oracle.num_ads(), h, "oracle/advertiser count mismatch");
    let lam = lambda(h, tau);
    let b_min = b_min_for(h);
    if h == 1 {
        let candidates: Vec<NodeId> = (0..instance.num_nodes as NodeId).collect();
        let out = greedy_single(instance, oracle, 0, &candidates);
        let allocation = Allocation {
            seed_sets: vec![out.best()],
        };
        let revenue = out.best_revenue();
        return OracleSolution {
            allocation,
            revenue,
            search: None,
            b_min,
            lambda: lam,
        };
    }
    let outcome = search(instance, oracle, tau, b_min);
    OracleSolution {
        allocation: outcome.best.clone(),
        revenue: outcome.best_revenue,
        search: Some(outcome),
        b_min,
        lambda: lam,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ExactRevenueOracle, RevenueOracle};
    use crate::problem::{Advertiser, SeedCosts};
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::graph_from_edges;

    fn star_instance(h: usize, budget: f64) -> (rmsa_graph::DirectedGraph, UniformIc, RmInstance) {
        let g = graph_from_edges(10, &[(0, 2), (0, 3), (0, 4), (1, 5), (1, 6), (7, 8)]);
        let m = UniformIc::new(h, 1.0);
        let inst = RmInstance::try_new(
            10,
            (0..h)
                .map(|_| Advertiser::try_new(budget, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; 10]),
        )
        .unwrap();
        (g, m, inst)
    }

    #[test]
    fn single_advertiser_runs_plain_greedy() {
        let (g, m, inst) = star_instance(1, 12.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let sol = rm_with_oracle(&inst, &o, 0.1);
        assert!(sol.search.is_none());
        assert!((sol.lambda - 1.0 / 3.0).abs() < 1e-12);
        assert!(!sol.allocation.seed_sets[0].is_empty());
        assert!(sol.revenue > 0.0);
    }

    #[test]
    fn two_advertisers_use_search_with_bmin_one() {
        let (g, m, inst) = star_instance(2, 8.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let sol = rm_with_oracle(&inst, &o, 0.1);
        assert!(sol.search.is_some());
        assert_eq!(sol.b_min, 1);
        assert!(sol.allocation.is_disjoint());
    }

    #[test]
    fn many_advertisers_use_search_with_bmin_two() {
        let (g, m, inst) = star_instance(5, 6.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let sol = rm_with_oracle(&inst, &o, 0.1);
        assert_eq!(sol.b_min, 2);
        assert!((sol.lambda - 1.0 / (11.0 * 1.1)).abs() < 1e-12);
        assert!(sol.allocation.is_disjoint());
        for ad in 0..5 {
            let seeds = sol.allocation.seeds(ad);
            let spent = o.revenue(ad, seeds) + inst.set_cost(ad, seeds);
            assert!(spent <= inst.budget(ad) + 1e-9);
        }
    }

    #[test]
    fn reported_revenue_matches_the_allocation() {
        let (g, m, inst) = star_instance(3, 7.0);
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let sol = rm_with_oracle(&inst, &o, 0.15);
        let recomputed = o.allocation_revenue(&sol.allocation.seed_sets);
        assert!((sol.revenue - recomputed).abs() < 1e-9);
    }

    #[test]
    fn oracle_solution_respects_theoretical_ratio_on_a_brute_forced_instance() {
        // Tiny instance where the optimum can be found by brute force over
        // all (node → advertiser | unassigned) assignments.
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let m = UniformIc::new(2, 1.0);
        let inst = RmInstance::try_new(
            4,
            vec![
                Advertiser::try_new(5.0, 1.0).unwrap(),
                Advertiser::try_new(5.0, 1.0).unwrap(),
            ],
            SeedCosts::Shared(vec![1.0; 4]),
        )
        .unwrap();
        let o = ExactRevenueOracle::new(&g, &m, &inst);
        let sol = rm_with_oracle(&inst, &o, 0.1);

        // Brute force: each node gets advertiser 0, advertiser 1, or none.
        let mut opt = 0.0f64;
        for mask in 0..3usize.pow(4) {
            let mut sets = vec![Vec::new(), Vec::new()];
            let mut code = mask;
            for node in 0..4u32 {
                match code % 3 {
                    0 => {}
                    1 => sets[0].push(node),
                    2 => sets[1].push(node),
                    _ => unreachable!(),
                }
                code /= 3;
            }
            let feasible = (0..2).all(|ad| {
                o.revenue(ad, &sets[ad]) + inst.set_cost(ad, &sets[ad]) <= inst.budget(ad)
            });
            if feasible {
                opt = opt.max(o.allocation_revenue(&sets));
            }
        }
        assert!(
            sol.revenue >= sol.lambda * opt - 1e-9,
            "revenue {} below λ·OPT = {}",
            sol.revenue,
            sol.lambda * opt
        );
    }
}
