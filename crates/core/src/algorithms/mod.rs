//! Oracle-setting algorithms of Section 3 (Algorithms 1–5).

pub mod greedy;
pub mod rm_oracle;
pub mod search;
pub mod threshold_greedy;

pub use greedy::{greedy_single, GreedyOutcome};
pub use rm_oracle::{rm_with_oracle, OracleSolution};
pub use search::{gamma_max, search, SearchOutcome};
pub use threshold_greedy::{fill, threshold_greedy, ThresholdGreedyOutcome};
