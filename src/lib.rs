//! # rmsa — Revenue Maximization in Social Advertising
//!
//! Facade crate for the reproduction of *"Efficient and Effective Algorithms
//! for Revenue Maximization in Social Advertising"* (SIGMOD 2021). It
//! re-exports the workspace crates under stable module names and adds the
//! [`Workbench`] session API:
//!
//! * [`graph`] — CSR directed graphs, generators, IO ([`rmsa_graph`]).
//! * [`diffusion`] — TIC / Weighted-Cascade models, Monte-Carlo simulation,
//!   RR-set sampling and the shared [`diffusion::RrCache`]
//!   ([`rmsa_diffusion`]).
//! * [`core`] — the RM problem, the paper's algorithms (oracle + sampling),
//!   the baselines, and the unified [`core::solver::Solver`] trait
//!   ([`rmsa_core`]).
//! * [`datasets`] — synthetic dataset stand-ins and experiment configuration
//!   ([`rmsa_datasets`]).
//!
//! ## The solving session
//!
//! Algorithms are [`core::solver::Solver`]s invoked through a
//! [`core::solver::SolveContext`]; the [`Workbench`] owns graph, model, and
//! a shared RR-set cache, and drives registered solvers across parameter
//! sweeps so sampling work is amortised instead of repeated. See `DESIGN.md`
//! for the paper-algorithm → module map and the migration table from the
//! pre-0.2 free-function API, and `examples/quickstart.rs` for a
//! five-minute tour.

pub use rmsa_core as core;
pub use rmsa_datasets as datasets;
pub use rmsa_diffusion as diffusion;
pub use rmsa_graph as graph;

mod workbench;

pub use workbench::{SweepPoint, WarmStats, Workbench, WorkbenchBuilder};

/// Commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use crate::workbench::{SweepPoint, WarmStats, Workbench, WorkbenchBuilder};
    pub use rmsa_core::baselines::{TiConfig, TiResult};
    pub use rmsa_core::solver::{
        CaGreedy, CsGreedy, OneBatch, OracleGreedy, OracleMode, Rma, RrAccounting, SolveContext,
        SolveReport, Solver, TiCarm, TiCsrm,
    };
    pub use rmsa_core::{
        Advertiser, Allocation, ExactRevenueOracle, IndependentEvaluator, McRevenueOracle,
        RevenueOracle, RmError, RmInstance, RmaConfig, RmaResult, SeedCosts,
    };
    pub use rmsa_datasets::{Dataset, DatasetKind, IncentiveModel};
    pub use rmsa_diffusion::{
        PropagationModel, RrCache, RrCacheStats, RrStrategy, RrStream, TicModel, UniformIc,
        WeightedCascade,
    };
    pub use rmsa_graph::{DirectedGraph, GraphBuilder, NodeId};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let graph = rmsa_graph::generators::celebrity_graph(3, 5);
        let n = graph.num_nodes();
        let mut wb = Workbench::builder()
            .graph(graph)
            .model(UniformIc::new(1, 0.5))
            .threads(1)
            .seed(1)
            .build()
            .expect("graph and model provided");
        wb.register(Rma::new(RmaConfig {
            epsilon: 0.1,
            max_rr_per_collection: 5_000,
            num_threads: 1,
            ..RmaConfig::default()
        }));
        let instance = RmInstance::try_new(
            n,
            vec![Advertiser::try_new(10.0, 1.0).unwrap()],
            SeedCosts::Shared(vec![1.0; n]),
        )
        .unwrap();
        let reports = wb.run(&instance).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].allocation.is_disjoint());
    }
}
