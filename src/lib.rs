//! # rmsa — Revenue Maximization in Social Advertising
//!
//! Facade crate for the reproduction of *"Efficient and Effective Algorithms
//! for Revenue Maximization in Social Advertising"* (SIGMOD 2021). It
//! re-exports the workspace crates under stable module names so downstream
//! users can depend on a single crate:
//!
//! * [`graph`] — CSR directed graphs, generators, IO ([`rmsa_graph`]).
//! * [`diffusion`] — TIC / Weighted-Cascade models, Monte-Carlo simulation,
//!   RR-set sampling ([`rmsa_diffusion`]).
//! * [`core`] — the RM problem, the paper's algorithms (oracle + sampling)
//!   and the baselines ([`rmsa_core`]).
//! * [`datasets`] — synthetic dataset stand-ins and experiment configuration
//!   ([`rmsa_datasets`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

pub use rmsa_core as core;
pub use rmsa_datasets as datasets;
pub use rmsa_diffusion as diffusion;
pub use rmsa_graph as graph;

/// Commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use rmsa_core::{
        rm_with_oracle, rm_without_oracle, Advertiser, Allocation, ExactRevenueOracle,
        IndependentEvaluator, McRevenueOracle, RevenueOracle, RmInstance, RmaConfig, RmaResult,
        SeedCosts,
    };
    pub use rmsa_datasets::{Dataset, DatasetKind, IncentiveModel};
    pub use rmsa_diffusion::{
        PropagationModel, RrStrategy, TicModel, UniformIc, WeightedCascade,
    };
    pub use rmsa_graph::{DirectedGraph, GraphBuilder, NodeId};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let graph = rmsa_graph::generators::celebrity_graph(3, 5);
        let model = UniformIc::new(1, 0.5);
        let instance = RmInstance::new(
            graph.num_nodes(),
            vec![Advertiser::new(10.0, 1.0)],
            SeedCosts::Shared(vec![1.0; graph.num_nodes()]),
        );
        let config = RmaConfig {
            max_rr_per_collection: 5_000,
            num_threads: 1,
            ..RmaConfig::default()
        };
        let result = rm_without_oracle(&graph, &model, &instance, &config);
        assert!(result.allocation.is_disjoint());
    }
}
