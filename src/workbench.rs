//! The `Workbench`: a session owning graph + propagation model + RR-set
//! cache, running registered [`Solver`]s across instances and parameter
//! sweeps.
//!
//! The paper's experiments all have the shape "run `h` solvers × `k`
//! parameter points over one graph/model". The workbench makes that the
//! cheap, first-class operation: every sampling solver draws from the
//! workbench's shared [`RrCache`], so RR-set collections are *extended*
//! across runs instead of regenerated, and the independent evaluation
//! collection is likewise built once per advertiser line-up.

use rmsa_core::sampling::RrRevenueEstimator;
use rmsa_core::solver::{SolveContext, SolveReport, Solver};
use rmsa_core::{IndependentEvaluator, RmError, RmInstance};
use rmsa_diffusion::{
    PropagationModel, RrCache, RrCacheStats, RrStrategy, RrStream, UniformRrSampler,
};
use rmsa_graph::DirectedGraph;

/// Builder for [`Workbench`]; see [`Workbench::builder`].
pub struct WorkbenchBuilder {
    graph: Option<DirectedGraph>,
    model: Option<Box<dyn PropagationModel>>,
    strategy: RrStrategy,
    threads: usize,
    seed: u64,
}

impl WorkbenchBuilder {
    /// The social graph (owned by the workbench).
    pub fn graph(mut self, graph: DirectedGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The propagation model (boxed and owned by the workbench).
    pub fn model<M: PropagationModel + 'static>(mut self, model: M) -> Self {
        self.model = Some(Box::new(model));
        self
    }

    /// A pre-boxed propagation model.
    pub fn boxed_model(mut self, model: Box<dyn PropagationModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// RR-set generation strategy of the shared cache (default:
    /// [`RrStrategy::Standard`]).
    pub fn strategy(mut self, strategy: RrStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Worker threads for RR-set generation (default: `RMSA_THREADS` via
    /// [`rmsa_core::default_num_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Base RNG seed of the shared cache (default `0xC0FFEE`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assemble the workbench; fails when graph or model is missing or
    /// their dimensions are trivially inconsistent.
    pub fn build(self) -> Result<Workbench, RmError> {
        let graph = self
            .graph
            .ok_or_else(|| RmError::InvalidContext("workbench needs a graph".to_string()))?;
        let model = self.model.ok_or_else(|| {
            RmError::InvalidContext("workbench needs a propagation model".to_string())
        })?;
        if model.num_ads() == 0 {
            return Err(RmError::NoAdvertisers);
        }
        let cache = RrCache::new(graph.num_nodes(), self.strategy, self.threads, self.seed);
        Ok(Workbench {
            graph,
            model,
            cache,
            solvers: Vec::new(),
        })
    }
}

/// One point of a parameter sweep: the sweep key plus one report per
/// registered solver.
#[derive(Clone, Debug)]
pub struct SweepPoint<K> {
    /// The swept parameter value (α, ε, a budget, …).
    pub key: K,
    /// Reports of every registered solver, in registration order.
    pub reports: Vec<SolveReport>,
}

/// A solving session over one graph + propagation model.
///
/// ```
/// use rmsa::prelude::*;
///
/// let graph = rmsa_graph::generators::celebrity_graph(3, 5);
/// let n = graph.num_nodes();
/// let mut wb = Workbench::builder()
///     .graph(graph)
///     .model(UniformIc::new(1, 0.5))
///     .threads(1)
///     .seed(7)
///     .build()
///     .unwrap();
/// wb.register(Rma::new(RmaConfig {
///     epsilon: 0.1,
///     max_rr_per_collection: 5_000,
///     num_threads: 1,
///     ..RmaConfig::default()
/// }));
/// let instance = RmInstance::try_new(
///     n,
///     vec![Advertiser::try_new(10.0, 1.0).unwrap()],
///     SeedCosts::Shared(vec![1.0; n]),
/// )
/// .unwrap();
/// let reports = wb.run(&instance).unwrap();
/// assert!(reports[0].allocation.is_disjoint());
/// ```
pub struct Workbench {
    graph: DirectedGraph,
    model: Box<dyn PropagationModel>,
    cache: RrCache,
    solvers: Vec<Box<dyn Solver>>,
}

impl Workbench {
    /// Start building a workbench.
    pub fn builder() -> WorkbenchBuilder {
        WorkbenchBuilder {
            graph: None,
            model: None,
            strategy: RrStrategy::Standard,
            threads: rmsa_core::default_num_threads(),
            seed: 0xC0FFEE,
        }
    }

    /// The owned graph.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// The owned propagation model.
    pub fn model(&self) -> &dyn PropagationModel {
        self.model.as_ref()
    }

    /// The shared RR-set cache.
    pub fn cache(&self) -> &RrCache {
        &self.cache
    }

    /// Snapshot of the cache's reuse accounting.
    pub fn cache_stats(&self) -> RrCacheStats {
        self.cache.stats()
    }

    /// Register a solver; it participates in every subsequent [`run`]
    /// and [`sweep`] call, in registration order.
    ///
    /// [`run`]: Workbench::run
    /// [`sweep`]: Workbench::sweep
    pub fn register<S: Solver + 'static>(&mut self, solver: S) -> &mut Self {
        self.solvers.push(Box::new(solver));
        self
    }

    /// Names of the registered solvers, in registration order.
    pub fn solver_names(&self) -> Vec<String> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Remove all registered solvers (the cache is untouched).
    pub fn clear_solvers(&mut self) {
        self.solvers.clear();
    }

    /// Assemble a [`SolveContext`] for `instance`, for driving a solver
    /// by hand.
    pub fn context<'a>(&'a self, instance: &'a RmInstance) -> Result<SolveContext<'a>, RmError> {
        SolveContext::new(&self.graph, self.model.as_ref(), instance, &self.cache)
    }

    /// Run one solver on one instance.
    pub fn run_solver(
        &self,
        solver: &dyn Solver,
        instance: &RmInstance,
    ) -> Result<SolveReport, RmError> {
        let ctx = self.context(instance)?;
        solver.solve(&ctx)
    }

    /// Run every registered solver on one instance.
    pub fn run(&self, instance: &RmInstance) -> Result<Vec<SolveReport>, RmError> {
        let ctx = self.context(instance)?;
        self.solvers.iter().map(|s| s.solve(&ctx)).collect()
    }

    /// Run every registered solver at every sweep point. RR-set collections
    /// are shared across points, so later points extend — never regenerate —
    /// the samples of earlier ones (as long as the advertiser CPE line-up is
    /// unchanged).
    pub fn sweep<K, I>(&self, points: I) -> Result<Vec<SweepPoint<K>>, RmError>
    where
        I: IntoIterator<Item = (K, RmInstance)>,
    {
        points
            .into_iter()
            .map(|(key, instance)| {
                let reports = self.run(&instance)?;
                Ok(SweepPoint { key, reports })
            })
            .collect()
    }

    /// An independent evaluator over the cache's [`RrStream::Evaluate`]
    /// stream — RR-sets no solver ever optimises against. Re-requesting an
    /// evaluator across a sweep reuses the same collection *and* the same
    /// incrementally maintained coverage index (the estimator snapshot is
    /// a few `Arc` bumps, not a rebuild).
    pub fn evaluator(&self, instance: &RmInstance, num_rr_sets: usize) -> IndependentEvaluator {
        let sampler = UniformRrSampler::new(&instance.cpe_values());
        let (evaluator, _) = self.cache.with_at_least(
            &self.graph,
            self.model.as_ref(),
            &sampler,
            RrStream::Evaluate,
            num_rr_sets,
            |v| {
                IndependentEvaluator::from_estimator(RrRevenueEstimator::from_view(
                    v.coverage(),
                    instance.gamma(),
                ))
            },
        );
        evaluator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmsa_core::problem::{Advertiser, SeedCosts};
    use rmsa_core::solver::Rma;
    use rmsa_core::RmaConfig;
    use rmsa_diffusion::UniformIc;
    use rmsa_graph::generators::celebrity_graph;

    fn quick_rma() -> RmaConfig {
        RmaConfig {
            epsilon: 0.1,
            delta: 0.1,
            rho: 0.2,
            num_threads: 1,
            max_rr_per_collection: 20_000,
            ..RmaConfig::default()
        }
    }

    fn bench_world(h: usize) -> (Workbench, RmInstance) {
        let graph = celebrity_graph(4, 8);
        let n = graph.num_nodes();
        let model = UniformIc::new(h, 0.4);
        let wb = Workbench::builder()
            .graph(graph)
            .model(model)
            .threads(1)
            .seed(11)
            .build()
            .unwrap();
        let instance = RmInstance::try_new(
            n,
            (0..h)
                .map(|_| Advertiser::try_new(10.0, 1.0).unwrap())
                .collect(),
            SeedCosts::Shared(vec![1.0; n]),
        )
        .unwrap();
        (wb, instance)
    }

    #[test]
    fn builder_requires_graph_and_model() {
        assert!(Workbench::builder().build().is_err());
        assert!(Workbench::builder()
            .graph(celebrity_graph(2, 3))
            .build()
            .is_err());
    }

    #[test]
    fn registered_solvers_run_in_order() {
        let (mut wb, instance) = bench_world(2);
        wb.register(Rma::new(quick_rma()));
        assert_eq!(wb.solver_names(), vec!["RMA".to_string()]);
        let reports = wb.run(&instance).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].allocation.is_disjoint());
        wb.clear_solvers();
        assert!(wb.run(&instance).unwrap().is_empty());
    }

    #[test]
    fn sweep_extends_rather_than_regenerates() {
        let (mut wb, instance) = bench_world(2);
        wb.register(Rma::new(quick_rma()));
        // Two-point sweep over budgets (same CPEs → cache stays valid).
        let points: Vec<(f64, RmInstance)> = [10.0, 14.0]
            .iter()
            .map(|&b| {
                let ads = (0..2)
                    .map(|_| Advertiser::try_new(b, 1.0).unwrap())
                    .collect();
                (
                    b,
                    RmInstance::try_new(
                        instance.num_nodes,
                        ads,
                        SeedCosts::Shared(vec![1.0; instance.num_nodes]),
                    )
                    .unwrap(),
                )
            })
            .collect();
        let rows = wb.sweep(points).unwrap();
        assert_eq!(rows.len(), 2);
        let stats = wb.cache_stats();
        assert!(
            stats.generated < stats.requested,
            "sweep must reuse RR-sets: generated {} of {} requested",
            stats.generated,
            stats.requested
        );
    }

    #[test]
    fn reports_expose_index_reuse_accounting() {
        let (mut wb, instance) = bench_world(2);
        wb.register(Rma::new(quick_rma()));
        let first = wb.run(&instance).unwrap();
        assert!(first[0].rr.index_extended > 0, "cold cache must index");
        // Same instance again: collections and coverage index are warm, so
        // the second solve does zero index work and reports pure reuse.
        let second = wb.run(&instance).unwrap();
        assert_eq!(
            second[0].rr.index_extended, 0,
            "warm index must be reused, not rebuilt"
        );
        assert!(second[0].rr.index_reused >= second[0].rr.used);
        let stats = wb.cache_stats();
        assert_eq!(
            stats.index_extended, stats.generated,
            "every generated RR-set is indexed exactly once"
        );
    }

    #[test]
    fn evaluator_collection_is_cached() {
        let (wb, instance) = bench_world(2);
        let _e1 = wb.evaluator(&instance, 5_000);
        let generated_once = wb.cache_stats().generated;
        let _e2 = wb.evaluator(&instance, 5_000);
        assert_eq!(wb.cache_stats().generated, generated_once);
    }
}
